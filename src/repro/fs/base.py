"""Filesystem contract shared by local scratch, NFS and HDFS.

Logical vs physical
-------------------
Every :class:`SimFile` has a *physical* payload (real bytes, supplied by a
:class:`~repro.fs.content.ContentProvider`) and an integer ``scale``; its
*logical* size is ``physical_size * scale``.  All offsets/lengths in the
timed I/O API are **logical**: they drive the storage and network cost
models.  The bytes returned are the corresponding *physical* sample
(``[offset // scale, (offset + length) // scale)``), so computation operates
on real data while the clock advances as if the file were ``scale`` times
larger.  ``scale == 1`` (the default) makes logical and physical identical.

Because the logical->physical mapping floors at boundaries, a tiling of the
logical range maps to a tiling of the physical payload: parallel readers
that partition the logical file collectively see every physical byte exactly
once.  Tests rely on this invariant.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.errors import FileExistsInSim, FileNotFoundInSim
from repro.fs.content import ContentProvider
from repro.sim.process import SimProcess


class SimFile:
    """Metadata + payload of one simulated file."""

    def __init__(self, path: str, content: ContentProvider, scale: int = 1) -> None:
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        self.path = path
        self.content = content
        self.scale = int(scale)
        #: cached product: ContentProvider sizes are fixed after
        #: construction and nothing reassigns ``content``/``scale``
        #: (writes extend the filesystems' block maps, not the payload),
        #: so the value cannot go stale.  This sits on the per-block read
        #: hot path of every filesystem.
        self.logical_size = self.content.size * self.scale

    @property
    def physical_size(self) -> int:
        return self.content.size

    def physical_range(self, offset: int, length: int) -> tuple[int, int]:
        """Map a logical byte range to the physical sample range."""
        if offset < 0 or length < 0:
            raise ValueError(f"invalid range: offset={offset} length={length}")
        start = min(offset, self.logical_size) // self.scale
        end = min(offset + length, self.logical_size) // self.scale
        return start, max(start, end)

    def physical_read(self, offset: int, length: int) -> bytes:
        """Untimed host-side read of the physical sample for a logical range."""
        start, end = self.physical_range(offset, length)
        return self.content.read(start, end - start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimFile {self.path!r} physical={self.physical_size}"
            f" scale={self.scale}>"
        )


class FileSystem(ABC):
    """Common interface of the three simulated filesystems.

    Creation (:meth:`create`) is a host-side setup operation and is never
    timed; the timed surface is :meth:`read` and :meth:`write`, which must be
    called from within a simulated process.
    """

    #: URL-ish scheme used in traces and experiment configs
    scheme: str = "file"

    # -- namespace -------------------------------------------------------------

    @abstractmethod
    def lookup(self, path: str) -> SimFile:
        """Return the file's metadata or raise :class:`FileNotFoundInSim`."""

    @abstractmethod
    def paths(self) -> Iterable[str]:
        """All paths currently present."""

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except FileNotFoundInSim:
            return False

    def size(self, path: str) -> int:
        """Logical size of ``path`` in bytes."""
        return self.lookup(path).logical_size

    # -- host-side setup ---------------------------------------------------------

    @abstractmethod
    def create(self, path: str, content: ContentProvider, *, scale: int = 1) -> SimFile:
        """Install a file without charging simulated time (experiment setup)."""

    @abstractmethod
    def delete(self, path: str) -> None:
        """Remove a file (host-side)."""

    # -- timed I/O ----------------------------------------------------------------

    @abstractmethod
    def read(self, proc: SimProcess, path: str, offset: int, length: int) -> bytes:
        """Timed read of logical range ``[offset, offset+length)``.

        Blocks ``proc`` for the modelled I/O duration and returns the
        physical sample bytes.
        """

    @abstractmethod
    def write(self, proc: SimProcess, path: str, nbytes: int) -> None:
        """Timed write creating/extending ``path`` by ``nbytes`` logical bytes.

        Output files carry no payload (benchmark outputs are verified at the
        application level); only the cost matters.
        """

    # -- helpers -------------------------------------------------------------------

    def _check_new(self, known: dict, path: str) -> None:
        if path in known:
            raise FileExistsInSim(f"{self.scheme}://{path} already exists")

    def _check_have(self, known: dict, path: str):
        try:
            return known[path]
        except KeyError:
            raise FileNotFoundInSim(f"{self.scheme}://{path} not found") from None
