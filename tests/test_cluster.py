"""Unit tests for the cluster hardware layer (specs, network, storage)."""

from __future__ import annotations

import pytest

from repro.cluster import COMET, Cluster
from repro.cluster.network import BULK_THRESHOLD
from repro.cluster.spec import ETH_10G, IB_FDR_RDMA, IPOIB, TESTING, ClusterSpec
from repro.cluster.storage import ssd_read_efficiency
from repro.errors import ConfigurationError, SimProcessError
from repro.sim import current_process
from repro.units import GiB, MiB


class TestSpecs:
    def test_comet_matches_table1(self):
        node = COMET.node
        assert node.cores == 24            # 2 sockets x 12 cores
        assert node.clock_hz == 2.5e9      # 2.5 GHz
        assert node.flops == 960e9         # 960 GFlop/s
        assert node.mem_bytes == 128 * GiB
        assert node.ssd_bytes == 320e9     # 320 GB local scratch

    def test_with_nodes_copies(self):
        c2 = COMET.with_nodes(2)
        assert c2.num_nodes == 2
        assert COMET.num_nodes == 8
        assert c2.node == COMET.node

    def test_fabric_lookup(self):
        assert COMET.fabric("ipoib") is IPOIB
        with pytest.raises(ConfigurationError):
            COMET.fabric("carrier-pigeon")

    def test_rdma_is_faster_than_sockets_everywhere(self):
        for other in (IPOIB, ETH_10G):
            assert IB_FDR_RDMA.latency < other.latency
            assert IB_FDR_RDMA.bandwidth > other.bandwidth
            assert IB_FDR_RDMA.sw_overhead(1 * MiB) < other.sw_overhead(1 * MiB)

    def test_invalid_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(name="bad", num_nodes=0)


class TestPlacement:
    def test_block_placement(self):
        cl = Cluster(TESTING)
        assert cl.placement(4, 2) == [0, 0, 1, 1]

    def test_placement_too_big_rejected(self):
        cl = Cluster(TESTING)
        with pytest.raises(ConfigurationError):
            cl.placement(100, 2)

    def test_spawn_requires_valid_node(self):
        cl = Cluster(TESTING)
        with pytest.raises(ConfigurationError):
            cl.spawn(lambda: None, node_id=99, name="x")


class TestNetwork:
    def _transfer_time(self, fabric: str, nbytes: int) -> float:
        cl = Cluster(TESTING)
        out = {}

        def sender():
            p = current_process()
            out["t"] = cl.network.transmit(p, fabric, 0, 1, nbytes)

        cl.spawn(sender, node_id=0, name="s")
        cl.run()
        return out["t"]

    def test_bulk_transfer_time_scales_with_size(self):
        t1 = self._transfer_time("ipoib", 10 * MiB)
        t2 = self._transfer_time("ipoib", 20 * MiB)
        assert t2 > t1 * 1.8

    def test_rdma_beats_ipoib_for_bulk(self):
        n = 64 * MiB
        assert self._transfer_time("ib-fdr-rdma", n) < self._transfer_time("ipoib", n)

    def test_small_message_dominated_by_latency(self):
        t = self._transfer_time("ib-fdr-rdma", 8)
        fab = IB_FDR_RDMA
        assert t == pytest.approx(fab.latency + fab.per_msg_cpu + 8 / fab.bandwidth,
                                  rel=1e-6)

    def test_loopback_cheaper_than_network(self):
        cl = Cluster(TESTING)
        out = {}

        def sender():
            p = current_process()
            t0 = p.clock
            cl.network.transmit(p, "ipoib", 0, 0, 1 * MiB)
            out["local"] = p.clock - t0
            t0 = p.clock
            cl.network.transmit(p, "ipoib", 0, 1, 1 * MiB)
            out["remote"] = p.clock - t0

        cl.spawn(sender, node_id=0, name="s")
        cl.run()
        assert out["local"] < out["remote"]

    def test_incast_shares_receiver_nic(self):
        """Two bulk senders to the same destination take ~2x the solo time."""
        nbytes = 32 * MiB
        solo = self._transfer_time("ipoib", nbytes)

        cl = Cluster(TESTING)
        done = []

        def sender():
            p = current_process()
            done.append(cl.network.transmit(p, "ipoib", 0, 1, nbytes))

        cl.spawn(sender, node_id=0, name="s0")
        cl.spawn(sender, node_id=0, name="s1")
        cl.run()
        # The per-sender CPU copy overhead is not shared, but the wire is:
        # the makespan grows by one extra wire-time over the solo transfer.
        wire = nbytes / IPOIB.bandwidth
        assert max(done) == pytest.approx(solo + wire, rel=0.02)

    def test_invalid_node_raises(self):
        cl = Cluster(TESTING)

        def sender():
            cl.network.transmit(current_process(), "ipoib", 0, 99, 10)

        cl.spawn(sender, node_id=0, name="s")
        with pytest.raises(SimProcessError) as ei:
            cl.run()
        assert isinstance(ei.value.__cause__, ConfigurationError)

    def test_msg_arrival_does_not_block(self):
        cl = Cluster(TESTING)
        out = {}

        def sender():
            p = current_process()
            arrival = cl.network.msg_arrival(p, "ipoib", 0, 1, 100)
            out["sender_clock"] = p.clock
            out["arrival"] = arrival

        cl.spawn(sender, node_id=0, name="s")
        cl.run()
        assert out["arrival"] > out["sender_clock"]

    def test_bulk_threshold_sane(self):
        # below MPI's eager cutoff x2: every rendezvous-sized transfer
        # goes through the contended fluid path
        assert BULK_THRESHOLD == 16 * 1024


class TestStorage:
    def test_ssd_read_faster_than_write(self):
        cl = Cluster(TESTING)
        out = {}

        def proc():
            p = current_process()
            t0 = p.clock
            cl.nodes[0].ssd.read(p, 100 * MiB)
            out["read"] = p.clock - t0
            t0 = p.clock
            cl.nodes[0].ssd.write(p, 100 * MiB)
            out["write"] = p.clock - t0

        cl.spawn(proc, node_id=0, name="p")
        cl.run()
        assert out["read"] < out["write"]

    def test_parallel_readers_contend(self):
        nbytes = 100 * MiB

        def run(nreaders):
            cl = Cluster(TESTING)
            done = []

            def reader():
                p = current_process()
                done.append(cl.nodes[0].ssd.read(p, nbytes))

            for i in range(nreaders):
                cl.spawn(reader, node_id=0, name=f"r{i}")
            cl.run()
            return max(done)

        t1, t8 = run(1), run(8)
        # 8 readers move 8x the bytes through one device; with the
        # efficiency curve the makespan is a bit worse than 8x.
        assert t8 > 8.0 * t1

    def test_ssd_efficiency_curve_shape(self):
        assert ssd_read_efficiency(1) == 1.0
        assert ssd_read_efficiency(4) == 1.0
        assert ssd_read_efficiency(8) < 1.0
        assert ssd_read_efficiency(100) == pytest.approx(0.75)

    def test_nfs_is_shared_across_nodes(self):
        cl = Cluster(TESTING)
        done = []

        def reader():
            p = current_process()
            done.append(cl.nfs_device.read(p, 100 * MiB))

        cl.spawn(reader, node_id=0, name="r0")
        cl.spawn(reader, node_id=1, name="r1")
        cl.run()
        solo = (100 * MiB) / cl.spec.nfs_bandwidth
        assert max(done) > 1.9 * solo

    def test_node_memory_stream_contention(self):
        cl = Cluster(TESTING)
        done = []

        def streamer():
            p = current_process()
            done.append(cl.nodes[0].stream_bytes(p, 1 * GiB))

        for i in range(4):
            cl.spawn(streamer, node_id=0, name=f"s{i}")
        cl.run()
        solo = (1 * GiB) / cl.spec.node.mem_bw
        assert max(done) == pytest.approx(4 * solo, rel=0.01)


class TestTraceGating:
    """A disabled trace must record nothing and change no virtual timing.

    The cluster layer gates event construction on ``trace.enabled`` so
    production runs skip even the kwargs marshalling; these tests pin that a
    disabled trace stays empty and that gating is timing-transparent.
    """

    def _workload(self, trace):
        cl = Cluster(TESTING, trace=trace)
        out = {}

        def proc():
            p = current_process()
            cl.nodes[0].ssd.read(p, 1 * MiB)
            cl.nodes[0].ssd.write(p, 1 * MiB)
            cl.network.transmit(p, "ipoib", 0, 0, 1024)      # loopback
            cl.network.transmit(p, "ipoib", 0, 1, 1 * MiB)   # bulk path
            cl.network.msg_arrival(p, "ipoib", 0, 1, 256)    # eager message
            out["t"] = p.clock

        cl.spawn(proc, node_id=0, name="p")
        cl.run()
        return out["t"]

    def test_disabled_trace_records_nothing(self):
        from repro.sim.trace import Trace

        tr = Trace(enabled=False)
        self._workload(tr)
        assert tr.events == []

    def test_gating_is_timing_transparent(self):
        from repro.sim.trace import Trace

        on = Trace(enabled=True)
        t_on = self._workload(on)
        t_off = self._workload(Trace(enabled=False))
        assert t_on == t_off
        assert sorted({ev.kind for ev in on.events}) == [
            "disk.read", "disk.write", "net.loopback", "net.msg",
            "net.transmit",
        ]
