"""Storage devices: node-local SSD scratch and the shared NFS/Lustre front.

Devices expose blocking ``read``/``write`` primitives that charge a
per-request service latency plus a fluid-bandwidth term.  SSD *read
contention* — the effect Section III-C of the paper discusses (throughput
degrading once too many processes read in parallel, cf. the threshold
algorithm of reference [20]) — is modelled by a capacity-efficiency curve.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.process import SimProcess
from repro.sim.resources import FlowSystem, FluidResource
from repro.sim.trace import Trace


def ssd_read_efficiency(n_active: int) -> float:
    """Aggregate-throughput multiplier for ``n_active`` concurrent readers.

    Up to 4 parallel streams an SSD keeps full sequential throughput; beyond
    that, request interleaving costs ~3 % per extra stream down to a floor of
    75 % — a smooth stand-in for the thresholds in the paper's reference
    [20].
    """
    if n_active <= 4:
        return 1.0
    return max(0.75, 1.0 - 0.03 * (n_active - 4))


class StorageDevice:
    """One device with independent read and write bandwidth pools.

    Parameters
    ----------
    name:
        Identifier (e.g. ``"ssd[3]"`` or ``"nfs"``).
    flow_system:
        The cluster's flow coordinator.
    read_bw / write_bw:
        Sequential bandwidths, bytes/s.
    latency:
        Per-request service latency, seconds.
    read_efficiency:
        Optional concurrency-degradation curve for reads (see
        :func:`ssd_read_efficiency`).
    """

    def __init__(
        self,
        name: str,
        flow_system: FlowSystem,
        *,
        read_bw: float,
        write_bw: float,
        latency: float,
        read_efficiency: Callable[[int], float] | None = None,
        trace: Trace | None = None,
    ) -> None:
        self.name = name
        self.flows = flow_system
        self.latency = latency
        self.trace = trace if trace is not None else Trace(enabled=False)
        self._read = FluidResource(
            f"{name}:read", read_bw, efficiency=read_efficiency
        )
        self._write = FluidResource(f"{name}:write", write_bw)

    def scale_bandwidth(self, t: float, factor: float) -> None:
        """Multiply both bandwidth pools by ``factor`` at virtual time ``t``.

        The fault injector's ``disk_stall`` hook: ``factor < 1`` degrades
        the device, and a later call with the inverse factor restores it
        exactly (in-flight transfers re-price mid-flow both times).
        """
        for pool in (self._read, self._write):
            self.flows.set_capacity(pool, pool.capacity * factor, t)

    def read(self, proc: SimProcess, nbytes: float, *, label: str = "") -> float:
        """Read ``nbytes``; blocks ``proc``; returns completion time."""
        proc.compute(self.latency)
        done = self.flows.transfer(
            proc, (self._read,), nbytes, label=label or f"read:{self.name}"
        )
        if self.trace.enabled:
            self.trace.record(done, proc.name, "disk.read",
                              device=self.name, nbytes=int(nbytes))
        return done

    def write(self, proc: SimProcess, nbytes: float, *, label: str = "") -> float:
        """Write ``nbytes``; blocks ``proc``; returns completion time."""
        proc.compute(self.latency)
        done = self.flows.transfer(
            proc, (self._write,), nbytes, label=label or f"write:{self.name}"
        )
        if self.trace.enabled:
            self.trace.record(done, proc.name, "disk.write",
                              device=self.name, nbytes=int(nbytes))
        return done

    @property
    def active_readers(self) -> int:
        """Number of in-flight read flows (for tests)."""
        return len(self._read.flows)
