"""MPI-IO: collective file access — including its famous ``int`` limit.

Models the MPI-2 parallel I/O routines the paper's benchmarks use
(Section II-B / V-C).  The crucial reproduced artefact: *the per-process
count argument of* ``MPI_File_read_at_all`` *is a C* ``int``, so a chunk
larger than ``INT_MAX`` (2 GiB - 1) raises
:class:`~repro.errors.MPIIntOverflowError`.  This is why the paper's 80 GB
AnswersCount run "could not support this amount of data unless the number of
processes is greater than 40" — reproduced mechanically by the Fig 4
harness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import MPIError, MPIIntOverflowError
from repro.fs.base import FileSystem
from repro.sim.engine import current_process
from repro.units import INT_MAX

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import Communicator


class MPIFile:
    """A file handle opened collectively over a communicator.

    Parameters mirror ``MPI_File_open``: every rank of ``comm`` must call
    :meth:`open` (collectively) with the same path.  The underlying
    ``FileSystem`` may be node-local scratch (the paper replicates inputs to
    every node), NFS or HDFS — MPI itself is storage-agnostic.
    """

    def __init__(self, comm: "Communicator", fs: FileSystem, path: str) -> None:
        self.comm = comm
        self.fs = fs
        self.path = path
        self._open = True

    @classmethod
    def open(cls, comm: "Communicator", fs: FileSystem, path: str) -> "MPIFile":
        """Collective open: validates existence and synchronises ranks."""
        fs.lookup(path)  # raises FileNotFoundInSim on every rank identically
        comm.barrier()
        return cls(comm, fs, path)

    def size(self) -> int:
        """Logical file size in bytes (``MPI_File_get_size``)."""
        self._check_open()
        return self.fs.size(self.path)

    # -- reads ---------------------------------------------------------------------

    def read_at(self, offset: int, count: int) -> bytes:
        """Independent read at an explicit offset (``MPI_File_read_at``)."""
        self._check_open()
        _check_int(count)
        return self.fs.read(current_process(), self.path, offset, count)

    def read_at_all(self, offset: int, count: int) -> bytes:
        """Collective read at explicit offsets (``MPI_File_read_at_all``).

        All ranks must call; each passes its own offset/count.  ``count``
        must fit in a C ``int`` — the 2 GiB limitation of Section V-C.
        Collective coordination costs two synchronisations around the I/O,
        which is what buys the implementation the chance to merge requests.
        """
        self._check_open()
        _check_int(count)
        proc = current_process()
        proc.compute(self.comm.env.costs.mpi_io_coordination)
        self.comm.barrier()
        data = self.fs.read(proc, self.path, offset, count)
        self.comm.barrier()
        return data

    # -- writes --------------------------------------------------------------------

    def write_at(self, offset: int, count: int) -> None:
        """Independent write of ``count`` bytes (payload is cost-only)."""
        self._check_open()
        _check_int(count)
        self.fs.write(current_process(), self.path, count)

    def write_at_all(self, offset: int, count: int) -> None:
        """Collective write (``MPI_File_write_at_all``)."""
        self._check_open()
        _check_int(count)
        proc = current_process()
        proc.compute(self.comm.env.costs.mpi_io_coordination)
        self.comm.barrier()
        self.fs.write(proc, self.path, count)
        self.comm.barrier()

    def close(self) -> None:
        """Collective close."""
        self._check_open()
        self.comm.barrier()
        self._open = False

    def _check_open(self) -> None:
        if not self._open:
            raise MPIError(f"file {self.path!r} is closed")


def _check_int(count: int) -> None:
    if count < 0:
        raise MPIError(f"negative count: {count}")
    if count > INT_MAX:
        raise MPIIntOverflowError(
            f"MPI-IO count {count} exceeds INT_MAX ({INT_MAX}); "
            "a C int cannot express chunks above 2 GiB - 1 "
            "(the Section V-C limitation)"
        )


def chunk_for_rank(file_size: int, rank: int, nprocs: int) -> tuple[int, int]:
    """The contiguous (offset, count) a rank owns under even striping.

    This is the decomposition the paper's MPI benchmarks use: the file is
    divided into ``nprocs`` contiguous chunks (the last rank absorbs the
    remainder).  The caller is responsible for passing the count through
    the ``int``-checked read — that is the point.
    """
    base = file_size // nprocs
    offset = rank * base
    count = base if rank < nprocs - 1 else file_size - offset
    return offset, count
