"""Operational metrics over a computed schedule.

These are the quantities production HPC operations teams actually watch
— and the ones the FRESCO work mines from 20.9M production job records:
how long jobs queue, how much of the machine produces results, how badly
small jobs suffer behind large ones, and how much allocated capacity is
requested-but-unused.  All of them are exact functions of the
:class:`~repro.sched.scheduler.SchedOutcome`, computed without any
rounding beyond float arithmetic, so the metrics dict itself is
bit-reproducible and the determinism tests pin it wholesale.

Definitions (see ``docs/scheduler.md`` for the discussion):

wait
    ``start - submit`` per job; reported as mean, p95 (nearest-rank on
    the sorted waits) and max.
utilization
    Allocated node-seconds over pool capacity:
    ``sum(nodes * runtime) / (pool_nodes * makespan)``.
bounded slowdown
    Mean over jobs of ``max(1, (wait + runtime) / max(runtime, 10s))`` —
    response time relative to runtime, clamped so sub-second jobs cannot
    dominate (Feitelson's BSLD).
waste
    Fraction of allocated node-seconds the application never exercised:
    ``sum((nodes - nodes_used) * runtime) / sum(nodes * runtime)`` —
    the over-request waste FRESCO detects in production traces.
"""

from __future__ import annotations

from typing import Any

from repro.sched.scheduler import SchedOutcome

__all__ = ["outcome_metrics"]

#: bounded-slowdown runtime clamp, seconds (the literature's usual 10 s)
BSLD_THRESHOLD = 10.0


def _p95(sorted_values: list[float]) -> float:
    """Nearest-rank 95th percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * 95 // 100))  # ceil(0.95 n)
    return sorted_values[rank - 1]


def outcome_metrics(outcome: SchedOutcome) -> dict[str, Any]:
    """The full operational metrics dict for one schedule.

    Keys: ``jobs``, ``makespan_s``, ``mean_wait_s``, ``p95_wait_s``,
    ``max_wait_s``, ``utilization``, ``bounded_slowdown``,
    ``waste_frac``, ``backfilled``, ``tenant_mean_wait_s`` (per-tenant
    mean waits, keys sorted).  Every value is an exact function of the
    outcome — the determinism tests compare this dict across worker
    counts and repeated runs with ``==``.
    """
    records = outcome.records
    n = len(records)
    if n == 0:
        return {"jobs": 0, "makespan_s": 0.0, "mean_wait_s": 0.0,
                "p95_wait_s": 0.0, "max_wait_s": 0.0, "utilization": 0.0,
                "bounded_slowdown": 0.0, "waste_frac": 0.0,
                "backfilled": 0, "tenant_mean_wait_s": {}}
    waits = sorted(r.wait for r in records)
    alloc = sum(r.job.nodes * r.runtime for r in records)
    used = sum(r.job.nodes_used * r.runtime for r in records)
    capacity = outcome.pool_nodes * outcome.makespan
    by_tenant: dict[str, list[float]] = {}
    for r in records:
        by_tenant.setdefault(r.job.tenant, []).append(r.wait)
    return {
        "jobs": n,
        "makespan_s": outcome.makespan,
        "mean_wait_s": sum(waits) / n,
        "p95_wait_s": _p95(waits),
        "max_wait_s": waits[-1],
        "utilization": alloc / capacity if capacity > 0 else 0.0,
        "bounded_slowdown":
            sum(r.bounded_slowdown(BSLD_THRESHOLD) for r in records) / n,
        "waste_frac": (alloc - used) / alloc if alloc > 0 else 0.0,
        "backfilled": sum(1 for r in records if r.backfilled),
        "tenant_mean_wait_s": {
            tenant: sum(ws) / len(ws)
            for tenant, ws in sorted(by_tenant.items())
        },
    }
