"""Declarative platform provisioning: one scenario spec, one session.

The paper's methodological core is running five programming models on *one*
platform so the comparison is fair.  This module is that platform as code:
a :class:`ScenarioSpec` describes the slice of (simulated) Comet an
experiment needs — node count, processes per node, filesystems, staged
datasets, tracing — and a :class:`Session` provisions it exactly once:
cluster, filesystems, staged data and framework runtime handles, in a
deterministic order.

Every entry layer (figures, ablations, extras, validation, examples,
profiler) consumes sessions instead of hand-wiring
``Cluster(COMET.with_nodes(n))`` + filesystem + staging calls, so the
provisioning logic exists in one place and the provisioned platform is
identical everywhere — the "same platform" discipline, enforced by
construction.

Example
-------
>>> from repro.platform import Dataset, ScenarioSpec
>>> from repro.fs.content import LineContent
>>> spec = ScenarioSpec(nodes=2, procs_per_node=4, datasets=(
...     Dataset("corpus.txt", LineContent(lambda i: f"line-{i}", 100)),))
>>> s = spec.session()
>>> s.local.size("corpus.txt") > 0
True
>>> res = s.mpi(lambda comm: comm.allreduce(comm.rank))
>>> res.returns[0]
28

A fresh cluster is a fresh virtual-time engine, so one session hosts one
measured run (like a dedicated allocation); call :meth:`ScenarioSpec.session`
again for the next measurement — the spec is the reusable artifact.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster import (
    DEFAULT_MACHINE,
    Cluster,
    ClusterSpec,
    MachineSpec,
    resolve_machine,
)
from repro.errors import ConfigurationError
from repro.sim.trace import Trace


def sanitize_forced() -> bool:
    """Resolved ``REPRO_SANITIZE`` hatch (this module is its home).

    ``REPRO_SANITIZE=1`` forces hb instrumentation onto every session built
    from a :class:`ScenarioSpec`, so the communication sanitizer's event
    streams exist for any run without editing its spec.  Observational
    only: the instrumentation never touches virtual time, so golden
    fingerprints are byte-identical with the flag on or off (CI asserts
    this).
    """
    return os.environ.get("REPRO_SANITIZE") == "1"


@dataclass(frozen=True)
class HDFSSpec:
    """How to mount HDFS in a scenario.

    ``replication=None`` means one replica per cluster node — the fully
    replicated setting the paper's experiments use so executor placement
    never forces remote reads (Section V-B2).
    """

    replication: int | None = None
    block_size: int | None = None


@dataclass(frozen=True)
class Dataset:
    """One staged input file.

    ``on`` names the filesystems the file is installed on, in order;
    ``scale`` is the logical-vs-physical multiplier (an "80 GB" file with
    MBs of physical payload — DESIGN.md §2).
    """

    path: str
    content: Any
    scale: int = 1
    on: tuple[str, ...] = ("local", "hdfs")


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of the platform an experiment runs on.

    A spec is an immutable value: build one, derive variants with
    :meth:`with_`, and provision as many fresh :class:`Session` objects
    from it as there are measured runs.  Two sessions built from equal
    specs are bit-identical platforms — same node count, same staged
    bytes, same process-id sequence — which is what makes cross-framework
    comparisons (and golden fingerprints) meaningful.

    Fields
    ------
    nodes, procs_per_node:
        Cluster size and process density (executors, ranks, PEs or
        slots per node); ``nprocs`` is their product.
    machine:
        The hardware + cost model to provision — a registry name
        (``"comet"``, ``"commodity-eth"``, …) or a full
        :class:`~repro.cluster.MachineSpec`.  Defaults to the simulated
        SDSC Comet; see :mod:`repro.cluster.machines` and
        ``docs/hardware.md``.
    base:
        Optional :class:`~repro.cluster.ClusterSpec` override replacing
        the machine's cluster shape while keeping its costs and fabric
        routing (rarely needed — prefer a machine variant).
    hdfs, datasets:
        HDFS mount parameters, and input files staged before the run in
        declaration order.
    trace:
        Enable structured event tracing (the profiler and the
        communication sanitizer read it back).
    hb:
        Enable happens-before instrumentation on top of tracing: vector
        clocks are threaded through the engine and shared-state accesses
        recorded for the race checker (:mod:`repro.analysis.races`).
        Implies ``trace``; observational only — virtual-time outputs are
        bit-identical with the flag on or off.
    faults:
        :class:`~repro.faults.FaultPlan` tuple injected at exact virtual
        times by a session daemon (``docs/faults.md``).  The empty
        default arms nothing — a fault-free session is bit-identical to
        one built before the fault subsystem existed.
    """

    #: cluster size in nodes (the paper sweeps 1..16)
    nodes: int = 2
    #: process density — executors, ranks, PEs or slots per node (the
    #: paper's runs use 8 or 16)
    procs_per_node: int = 8
    #: the machine this scenario provisions — a registry name or a
    #: :class:`~repro.cluster.MachineSpec`; defaults to the simulated
    #: SDSC Comet (see :mod:`repro.cluster.machines`)
    machine: str | MachineSpec = DEFAULT_MACHINE
    #: optional hardware override: replaces the machine's cluster spec
    #: while keeping its costs and fabric routing (rarely needed — prefer
    #: a machine variant)
    base: ClusterSpec | None = None
    #: HDFS mount parameters (replication, block size)
    hdfs: HDFSSpec = field(default_factory=HDFSSpec)
    #: input files staged before the run, in declaration order
    datasets: tuple[Dataset, ...] = ()
    #: enable structured event tracing (the profiler reads it back)
    trace: bool = False
    #: enable happens-before instrumentation on top of tracing: vector
    #: clocks are threaded through the engine and shared-state accesses are
    #: recorded for the race checker (:mod:`repro.analysis.races`).  Implies
    #: ``trace``.  Observational only — virtual-time outputs are
    #: bit-identical with the flag on or off.
    hb: bool = False
    #: fault plans (:class:`repro.faults.FaultPlan`) injected at their
    #: virtual times by a session daemon.  The empty default arms nothing —
    #: a fault-free session is bit-identical to one built before the fault
    #: subsystem existed (no extra processes, no pid shifts).
    faults: tuple[Any, ...] = ()

    @property
    def nprocs(self) -> int:
        """Total process count (``nodes * procs_per_node``)."""
        return self.nodes * self.procs_per_node

    @property
    def machine_spec(self) -> MachineSpec:
        """The resolved machine, with ``base`` applied if set."""
        machine = resolve_machine(self.machine)
        if self.base is not None:
            machine = machine.with_(cluster=self.base)
        return machine

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A copy of this spec with fields replaced.

        >>> ScenarioSpec(nodes=2).with_(nodes=8).nodes
        8
        """
        return dataclasses.replace(self, **changes)

    def session(self) -> "Session":
        """Provision a fresh platform session from this spec."""
        return Session(self)


class Session:
    """A provisioned platform: cluster + filesystems + data + runtimes.

    Construction provisions everything the spec declares; afterwards the
    session only hands out handles.  Filesystems not named by any dataset
    are mounted lazily on first use, so a scenario without staged data is
    exactly a bare cluster.

    One session hosts one measured run: the cluster owns a fresh
    virtual-time engine, and the first framework call
    (:meth:`spark`/:meth:`mpi`/...) that runs it consumes the engine's
    virtual timeline.  Attributes of note: ``cluster`` (the simulated
    hardware), ``trace`` (the event sink when the spec enables tracing,
    else ``None``), and ``faults`` (the armed
    :class:`~repro.faults.FaultInjector` when the spec lists fault plans,
    else ``None``).
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.machine = spec.machine_spec
        node_cores = self.machine.cluster.node.cores
        if spec.procs_per_node > node_cores:
            raise ConfigurationError(
                f"scenario oversubscribes the node model: "
                f"{spec.procs_per_node} processes/node on machine "
                f"{self.machine.name!r} whose nodes have {node_cores} cores")
        hb = spec.hb or sanitize_forced()
        self.trace = Trace(hb=hb) if spec.trace or hb else None
        self.cluster = Cluster(self.machine.with_nodes(spec.nodes),
                               trace=self.trace)
        # Arm fault plans before any datasets or runtimes exist so the
        # injector daemon gets the first pid *when used*; with no plans
        # nothing is imported or spawned and the session is bit-identical
        # to a fault-free build.
        self.faults = None
        if spec.faults:
            from repro.faults import FaultInjector

            self.faults = FaultInjector(self.cluster, spec.faults)
        for ds in spec.datasets:
            self.stage(ds)

    # -- filesystems -----------------------------------------------------------

    @property
    def local(self):
        """The per-node scratch filesystem (mounted on first use)."""
        fs = self.cluster.filesystems.get("local")
        if fs is None:
            from repro.fs import LocalFS

            fs = LocalFS(self.cluster)
        return fs

    @property
    def hdfs(self):
        """The cluster's HDFS instance (mounted on first use)."""
        fs = self.cluster.filesystems.get("hdfs")
        if fs is None:
            from repro.fs import HDFS

            conf = self.spec.hdfs
            kwargs: dict[str, Any] = {
                "replication": conf.replication or self.spec.nodes}
            if conf.block_size is not None:
                kwargs["block_size"] = conf.block_size
            fs = HDFS(self.cluster, **kwargs)
        return fs

    def fs(self, scheme: str):
        """Filesystem by scheme (``"local"``, ``"hdfs"``, ...)."""
        if scheme == "local":
            return self.local
        if scheme == "hdfs":
            return self.hdfs
        try:
            return self.cluster.filesystems[scheme]
        except KeyError:
            raise ConfigurationError(
                f"no filesystem {scheme!r} mounted in this session") from None

    def stage(self, ds: Dataset) -> None:
        """Install one dataset on the filesystems it names.

        Content carrying a cache identity (built via
        :func:`repro.cache.keyed_content`) is resolved through the active
        artifact store first, so staged payloads are served from a
        read-only ``mmap`` shared across worker processes.  Resolution is
        byte-preserving — the staged file is identical either way.
        Non-default machines scope the cache identity so their staged
        artifacts are never shared with another machine's.
        """
        from repro.cache import resolve_content

        content = resolve_content(ds.content, machine=self.machine.name)
        for scheme in ds.on:
            fs = self.fs(scheme)
            if scheme == "local":
                fs.create_replicated(ds.path, content, scale=ds.scale)
            else:
                fs.create(ds.path, content, scale=ds.scale)

    # -- framework runtime handles ---------------------------------------------

    def spark(self, **kwargs: Any):
        """A :class:`~repro.spark.SparkContext` on this session's cluster.

        ``executors_per_node`` defaults to the scenario's processes-per-node
        so all frameworks run at the same process density.
        """
        from repro.spark import SparkContext

        kwargs.setdefault("executors_per_node", self.spec.procs_per_node)
        return SparkContext(self.cluster, **kwargs)

    def mpi(self, fn: Callable[..., Any], nprocs: int | None = None, *,
            procs_per_node: int | None = None, **kwargs: Any):
        """Run an MPI job sized to the scenario (see :func:`repro.mpi.mpi_run`)."""
        from repro.mpi import mpi_run

        return mpi_run(self.cluster, fn, nprocs or self.spec.nprocs,
                       procs_per_node=procs_per_node or self.spec.procs_per_node,
                       **kwargs)

    def openmp(self, fn: Callable[..., Any], num_threads: int | None = None,
               **kwargs: Any):
        """Run an OpenMP region on node 0 (see :func:`repro.openmp.omp_run`)."""
        from repro.openmp import omp_run

        return omp_run(self.cluster, fn,
                       num_threads or self.spec.procs_per_node, **kwargs)

    def shmem(self, fn: Callable[..., Any], npes: int | None = None, *,
              pes_per_node: int | None = None, **kwargs: Any):
        """Run an OpenSHMEM job (see :func:`repro.shmem.shmem_run`)."""
        from repro.shmem import shmem_run

        return shmem_run(self.cluster, fn, npes or self.spec.nprocs,
                         pes_per_node=pes_per_node or self.spec.procs_per_node,
                         **kwargs)

    def mapreduce(self, conf: Any, **kwargs: Any):
        """Run a Hadoop MapReduce job (see :func:`repro.mapreduce.run_job`)."""
        from repro.mapreduce import run_job

        kwargs.setdefault("map_slots_per_node", self.spec.procs_per_node)
        kwargs.setdefault("reduce_slots_per_node", self.spec.procs_per_node)
        return run_job(self.cluster, conf, **kwargs)

    def run_in(self, app: Callable[..., Any], *args: Any, **kwargs: Any):
        """Run an app with signature ``app(cluster, ...)`` in this session."""
        return app(self.cluster, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Session(nodes={self.spec.nodes}, "
                f"procs_per_node={self.spec.procs_per_node}, "
                f"filesystems={sorted(self.cluster.filesystems)})")


def run_in(session: Session, app: Callable[..., Any], *args: Any,
           **kwargs: Any) -> Any:
    """Module-level form of :meth:`Session.run_in`."""
    return session.run_in(app, *args, **kwargs)


def session_app(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Attach a ``fn.run_in(session, ...)`` adapter to an app function.

    Apps keep their ``fn(cluster, ...)`` signature; the adapter lets entry
    layers hand them a :class:`Session` instead:
    ``mpi_pagerank.run_in(session, edges, ...)``.
    """
    def _run_in(session: Session, *args: Any, **kwargs: Any) -> Any:
        return fn(session.cluster, *args, **kwargs)

    fn.run_in = _run_in  # type: ignore[attr-defined]
    return fn


def comet(nodes: int, *, trace: Trace | None = None) -> Cluster:
    """A bare simulated Comet slice — the one place this is constructed."""
    return Cluster(resolve_machine(DEFAULT_MACHINE).with_nodes(nodes),
                   trace=trace)
