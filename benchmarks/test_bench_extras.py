"""Extension experiments: k-means ([38]) and MapReduce engines ([36]/[37])."""

from conftest import record

from repro.core.extras import extra_kmeans, extra_mapreduce
from repro.workloads.stackexchange import StackExchangeSpec


def test_bench_extra_kmeans(benchmark):
    result = benchmark.pedantic(
        extra_kmeans,
        kwargs={"node_counts": (1, 2, 4, 8), "n_points": 20_000,
                "iterations": 10},
        rounds=1, iterations=1)
    record(benchmark, result)
    mpi, spark = result.series
    for nodes in (1, 2, 4, 8):
        # compute-light iterative kernel: the HPC profile wins throughout
        assert mpi.y_for(nodes) < spark.y_for(nodes) / 10


def test_bench_extra_mapreduce(benchmark):
    result = benchmark.pedantic(
        extra_mapreduce,
        kwargs={"nodes": 4, "spec": StackExchangeSpec(n_posts=10_000)},
        rounds=1, iterations=1)
    record(benchmark, result)

    def seconds(row):
        value, unit = row[1].split()
        return float(value) * {"s": 1, "ms": 1e-3, "us": 1e-6, "min": 60}[unit]

    hadoop, mpi, spark = (seconds(r) for r in result.rows)
    assert mpi < spark < hadoop          # the [36]/[37] ordering
    assert hadoop > 20 * mpi             # "more than 100x" territory
