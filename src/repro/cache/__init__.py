"""Content-addressed artifact cache (see ``docs/caching.md``).

Two planes over one on-disk store (default ``.repro-cache/``):

* the **dataset plane** publishes generated workload payloads keyed by
  (generator name, spec, format version) and re-opens them read-only via
  ``mmap``, so sharded runs share one physical copy across worker
  processes instead of N regenerations;
* the **result plane** stores each driver Unit's result keyed by
  (experiment id, resolved params, code version), letting ``repro run``
  skip unchanged units and replay their results byte-identically.

Caching is strictly an *execution* optimisation: cold, warm and
``--no-cache`` runs produce byte-identical golden fingerprints, and every
entry is checksum-verified on open — corrupted or version-mismatched
entries are dropped and regenerated, never served.
"""

from repro.cache.datasets import dataset_stats, keyed_content, resolve_content
from repro.cache.keys import (FORMAT_VERSION, UncacheableError, cache_key,
                              code_version, encode_value)
from repro.cache.results import decode_result, encode_result, try_encode_result
from repro.cache.store import (ArtifactStore, active_store, configure,
                               default_root, env_root, register_invalidation,
                               resolve_root, store_info)

__all__ = [
    "FORMAT_VERSION",
    "UncacheableError",
    "encode_value",
    "cache_key",
    "code_version",
    "ArtifactStore",
    "configure",
    "active_store",
    "default_root",
    "env_root",
    "resolve_root",
    "register_invalidation",
    "store_info",
    "keyed_content",
    "resolve_content",
    "dataset_stats",
    "encode_result",
    "try_encode_result",
    "decode_result",
]
