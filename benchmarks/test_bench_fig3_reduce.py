"""Fig 3 — reduce microbenchmark: MPI vs Spark vs Spark-RDMA, 64 procs.

Paper shape asserted: MPI is orders of magnitude below Spark at every
size; Spark-RDMA tracks Spark (the reduce barely shuffles).
"""

from conftest import record

from repro.core.figures import fig3
from repro.units import KiB, MiB

SIZES = [4, 64, 1 * KiB, 16 * KiB, 256 * KiB, 1 * MiB]


def test_bench_fig3_reduce(benchmark):
    result = benchmark.pedantic(
        fig3, kwargs={"sizes": SIZES, "nodes": 8, "procs_per_node": 8,
                      "include_shmem": True},
        rounds=1, iterations=1)
    record(benchmark, result)
    mpi, spark, rdma = (result.series[i] for i in range(3))
    for size in SIZES:
        assert spark.y_for(size) > 50 * mpi.y_for(size)
        assert abs(rdma.y_for(size) - spark.y_for(size)) < 0.5 * spark.y_for(size)
