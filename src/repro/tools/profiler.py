"""Trace-based profiling: communication matrices and I/O summaries.

Provision a traced session, run any workload (MPI job, Spark application,
MapReduce job — the profiler is framework-agnostic), then feed the session
back here::

    from repro.platform import ScenarioSpec
    from repro.tools import profile_session

    session = ScenarioSpec(nodes=4, trace=True).session()
    ... run something in the session ...
    print(profile_session(session).render())

(:func:`profile_trace` is the lower-level form for hand-built clusters.)

The report covers: per-fabric node-to-node byte matrices (who talked to
whom, over which path), loopback traffic, per-device disk read/write
volumes, and message counts — the Scalasca/Tau-style view the paper notes
the Big Data stack lacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.trace import Trace
from repro.units import fmt_bytes


@dataclass
class ProfileReport:
    """Aggregated traffic/I/O view of one traced run."""

    num_nodes: int
    #: fabric -> (num_nodes x num_nodes) byte matrix, [src][dst]
    comm_matrix: dict[str, np.ndarray] = field(default_factory=dict)
    #: fabric -> message/transfer count
    message_counts: dict[str, int] = field(default_factory=dict)
    #: fabric -> loopback (same-node) bytes
    loopback_bytes: dict[str, int] = field(default_factory=dict)
    #: device name -> [read_bytes, write_bytes]
    disk_bytes: dict[str, list[int]] = field(default_factory=dict)
    #: phase label -> record count (e.g. per-shuffle write volumes)
    phase_records: dict[str, int] = field(default_factory=dict)
    #: host seconds spent producing the run (wall clock)
    wall_s: float | None = None
    #: simulated seconds the run covers (engine makespan)
    virtual_s: float | None = None

    # -- aggregates ------------------------------------------------------------

    def fabric_bytes(self, fabric: str) -> int:
        """Total cross-node bytes carried by one fabric."""
        m = self.comm_matrix.get(fabric)
        return int(m.sum()) if m is not None else 0

    def total_network_bytes(self) -> int:
        return sum(self.fabric_bytes(f) for f in self.comm_matrix)

    def total_disk_bytes(self) -> tuple[int, int]:
        """``(read, write)`` summed over all devices."""
        read = sum(v[0] for v in self.disk_bytes.values())
        write = sum(v[1] for v in self.disk_bytes.values())
        return read, write

    def hotspot(self, fabric: str) -> tuple[int, int, int]:
        """``(src, dst, bytes)`` of the busiest link on a fabric."""
        m = self.comm_matrix[fabric]
        src, dst = np.unravel_index(int(m.argmax()), m.shape)
        return int(src), int(dst), int(m[src, dst])

    # -- rendering ----------------------------------------------------------------

    def render(self) -> str:
        lines = [f"profile over {self.num_nodes} nodes"]
        for fabric in sorted(self.comm_matrix):
            total = self.fabric_bytes(fabric)
            count = self.message_counts.get(fabric, 0)
            loop = self.loopback_bytes.get(fabric, 0)
            lines.append(
                f"  fabric {fabric}: {fmt_bytes(total)} cross-node in "
                f"{count} transfers (+{fmt_bytes(loop)} loopback)")
            if total:
                m = self.comm_matrix[fabric]
                header = "        dst:" + "".join(
                    f"{d:>10d}" for d in range(self.num_nodes))
                lines.append(header)
                for s in range(self.num_nodes):
                    row = "".join(f"{fmt_bytes(m[s, d]):>10s}"
                                  for d in range(self.num_nodes))
                    lines.append(f"    src {s:>3d}:{row}")
        read, write = self.total_disk_bytes()
        lines.append(f"  disk: {fmt_bytes(read)} read, "
                     f"{fmt_bytes(write)} written")
        for dev in sorted(self.disk_bytes):
            r, w = self.disk_bytes[dev]
            lines.append(f"    {dev}: {fmt_bytes(r)} read, "
                         f"{fmt_bytes(w)} written")
        if self.phase_records:
            lines.append("  records per phase:")
            for phase, count in self.phase_records.items():
                lines.append(f"    {phase}: {count:,}")
        if self.wall_s is not None and self.virtual_s:
            lines.append(
                f"  wall {self.wall_s:.2f}s for {self.virtual_s:.2f}s "
                f"virtual ({self.wall_s / self.virtual_s:.3f} wall-s per "
                "virtual-s)")
        return "\n".join(lines)


def profile_trace(trace: Trace, num_nodes: int, *,
                  phase_records: dict[str, int] | None = None,
                  wall_s: float | None = None,
                  virtual_s: float | None = None) -> ProfileReport:
    """Aggregate a run's trace into a :class:`ProfileReport`.

    ``phase_records`` attaches per-phase record counts (e.g. from
    :meth:`MapOutputTracker.shuffle_stats`); ``wall_s``/``virtual_s``
    attach the host-time-per-simulated-second ratio — the number that
    shows a data-plane wall-clock regression before any test times out.
    """
    report = ProfileReport(num_nodes=num_nodes,
                           phase_records=dict(phase_records or {}),
                           wall_s=wall_s, virtual_s=virtual_s)
    for ev in trace:
        if ev.kind in ("net.transmit", "net.msg"):
            fabric = ev.detail["fabric"]
            m = report.comm_matrix.get(fabric)
            if m is None:
                m = np.zeros((num_nodes, num_nodes), dtype=np.int64)
                report.comm_matrix[fabric] = m
            m[ev.detail["src"], ev.detail["dst"]] += ev.detail["nbytes"]
            report.message_counts[fabric] = (
                report.message_counts.get(fabric, 0) + 1)
        elif ev.kind == "net.loopback":
            fabric = ev.detail["fabric"]
            report.loopback_bytes[fabric] = (
                report.loopback_bytes.get(fabric, 0) + ev.detail["nbytes"])
        elif ev.kind == "disk.read":
            report.disk_bytes.setdefault(ev.detail["device"], [0, 0])[0] += \
                ev.detail["nbytes"]
        elif ev.kind == "disk.write":
            report.disk_bytes.setdefault(ev.detail["device"], [0, 0])[1] += \
                ev.detail["nbytes"]
    return report


def profile_session(session, *,
                    phase_records: dict[str, int] | None = None,
                    wall_s: float | None = None) -> ProfileReport:
    """Aggregate a traced :class:`~repro.platform.Session`'s run.

    The session must have been provisioned with ``trace=True`` in its
    scenario; node count and virtual makespan are read off the session, so
    call sites only add host-side context (``wall_s``, ``phase_records``).
    """
    from repro.errors import ConfigurationError

    if session.trace is None or not session.trace.enabled:
        raise ConfigurationError(
            "session was not provisioned with trace=True; use "
            "ScenarioSpec(trace=True) to profile a run")
    return profile_trace(session.trace, len(session.cluster.nodes),
                         phase_records=phase_records, wall_s=wall_s,
                         virtual_s=session.cluster.engine.makespan())
