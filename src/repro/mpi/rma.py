"""One-sided communication: MPI-3 RMA windows (Section II-B).

A window exposes a per-rank NumPy buffer for remote put/get without target
participation — the "better support for one-sided and global-address-space
models" the paper credits to MPI-3.  Puts and gets ride the RDMA fabric
directly; synchronisation is via :meth:`Window.fence` (active target) or
:meth:`Window.lock`/:meth:`Window.unlock` (passive target).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import MPIError
from repro.sim.engine import current_process
from repro.sim.sync import SimLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import Communicator


class Window:
    """An RMA window over one communicator (``MPI_Win_create``)."""

    def __init__(self, comm: "Communicator", buffers: dict[int, np.ndarray],
                 shared: dict) -> None:
        self.comm = comm
        #: rank -> exposed buffer (shared registry — real memory, not copies)
        self._buffers = buffers
        #: rank -> SimLock; shared across the per-rank Window objects
        self._locks: dict[int, SimLock] = shared

    @classmethod
    def create(cls, comm: "Communicator", buffer: np.ndarray | None) -> "Window":
        """Collective window creation (``MPI_Win_create``): every rank exposes
        its buffer into a registry shared by all ranks' window handles, so a
        remote put mutates the *actual* target memory."""
        env = comm.env
        if not hasattr(env, "_rma_registry"):
            env._rma_registry = {}
            env._rma_calls = {}
        env._rma_calls[comm.ctx] = env._rma_calls.get(comm.ctx, 0) + 1
        epoch = (env._rma_calls[comm.ctx] - 1) // comm.size
        key = (comm.ctx, epoch)
        state = env._rma_registry.setdefault(key, {"buffers": {}, "locks": {}})
        state["buffers"][comm.rank] = (
            buffer if buffer is not None else np.empty(0)
        )
        comm.barrier()  # window is usable only once all ranks registered
        return cls(comm, state["buffers"], state["locks"])

    def buffer(self, rank: int | None = None) -> np.ndarray:
        """The exposed buffer of ``rank`` (defaults to the calling rank)."""
        rank = self.comm.rank if rank is None else rank
        return self._buffers[rank]

    # -- data movement ------------------------------------------------------------

    def put(self, data: np.ndarray, target_rank: int, target_offset: int = 0) -> None:
        """``MPI_Put``: write ``data`` into the target's window buffer."""
        proc = current_process()
        env = self.comm.env
        proc.compute(env.costs.shmem_rma_overhead)
        target = self._buffers[target_rank]
        if target_offset + data.size > target.size:
            raise MPIError(
                f"put of {data.size} items at offset {target_offset} "
                f"overflows window of {target.size}"
            )
        env.cluster.network.transmit(
            proc,
            env.fabric,
            env.node_of_rank(self.comm.world_rank(self.comm.rank)),
            env.node_of_rank(self.comm.world_rank(target_rank)),
            data.nbytes,
            label=f"rma.put->{target_rank}",
        )
        target[target_offset : target_offset + data.size] = data

    def get(self, target_rank: int, offset: int = 0, count: int | None = None) -> np.ndarray:
        """``MPI_Get``: read from the target's window buffer."""
        proc = current_process()
        env = self.comm.env
        proc.compute(env.costs.shmem_rma_overhead)
        source = self._buffers[target_rank]
        count = source.size - offset if count is None else count
        if offset + count > source.size:
            raise MPIError(
                f"get of {count} items at offset {offset} "
                f"overflows window of {source.size}"
            )
        view = source[offset : offset + count]
        env.cluster.network.transmit(
            proc,
            env.fabric,
            env.node_of_rank(self.comm.world_rank(target_rank)),
            env.node_of_rank(self.comm.world_rank(self.comm.rank)),
            view.nbytes,
            label=f"rma.get<-{target_rank}",
        )
        return view.copy()

    # -- synchronisation ------------------------------------------------------------

    def fence(self) -> None:
        """``MPI_Win_fence``: active-target epoch boundary (a barrier)."""
        self.comm.barrier()

    def lock(self, rank: int) -> None:
        """``MPI_Win_lock(EXCLUSIVE)`` on ``rank``'s window."""
        self._locks.setdefault(rank, SimLock(f"rma.win[{rank}]")).acquire(
            current_process()
        )

    def unlock(self, rank: int) -> None:
        """``MPI_Win_unlock``: release and hand to the next waiter."""
        lock = self._locks.get(rank)
        if lock is None:
            raise MPIError(f"unlock without holding the lock on window of {rank}")
        lock.release(current_process())
