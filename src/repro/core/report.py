"""Result containers and terminal rendering for experiments.

Every experiment returns either a :class:`TableResult` (paper tables) or a
:class:`FigureResult` (paper figures: one or more series over a shared
x-axis).  Rendering is plain ASCII so benchmark logs double as the
reproduction record in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.units import fmt_seconds


@dataclass
class Series:
    """One line of a figure: ``points[i] = (x, y-or-None)``.

    ``None`` y-values are rendered as ``--`` and mean "this configuration
    cannot run" (e.g. MPI below 41 processes on the 80 GiB input in Fig 4).
    """

    name: str
    points: list[tuple[Any, float | None]] = field(default_factory=list)

    def add(self, x: Any, y: float | None) -> None:
        self.points.append((x, y))

    def y_for(self, x: Any) -> float | None:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"series {self.name!r} has no point at x={x!r}")


@dataclass
class FigureResult:
    """A reproduced figure: series over a shared x-axis."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)

    def xs(self) -> list[Any]:
        seen: list[Any] = []
        for s in self.series:
            for x, _ in s.points:
                if x not in seen:
                    seen.append(x)
        return seen

    def render(self, *, time_values: bool = True) -> str:
        """ASCII table: one row per x, one column per series."""
        xs = self.xs()
        headers = [self.xlabel] + [s.name for s in self.series]
        rows = []
        for x in xs:
            row = [str(x)]
            for s in self.series:
                try:
                    y = s.y_for(x)
                except KeyError:
                    y = None
                if y is None:
                    row.append("--")
                elif time_values:
                    row.append(fmt_seconds(y))
                else:
                    row.append(f"{y:.4g}")
            rows.append(row)
        body = _ascii_table(headers, rows)
        return f"{self.figure_id}: {self.title}  [y: {self.ylabel}]\n{body}"


@dataclass
class TableResult:
    """A reproduced table: headers + string rows."""

    table_id: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def render(self) -> str:
        return f"{self.table_id}: {self.title}\n" + _ascii_table(
            self.headers, self.rows)

    def cell(self, row_key: str, column: str) -> str:
        """Row whose first cell equals ``row_key``, at ``column``."""
        ci = self.headers.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[ci]
        raise KeyError(f"no row {row_key!r}")


def _ascii_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: list[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = [fmt_row(headers), sep]
    out.extend(fmt_row(r) for r in rows)
    return "\n".join(out)
