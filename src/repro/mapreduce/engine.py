"""The MapReduce job engine: splits, task waves, shuffle, retries.

Execution model (Hadoop 2.x, as the paper ran it):

* the **driver** (client + YARN AM rolled together) pays the job-submission
  cost, computes input splits, then schedules task *attempts* into per-node
  slots, preferring nodes that hold a replica of the split (locality);
* each attempt is its own simulated process paying the **JVM start** cost —
  a dominant term for short tasks and a big part of why Hadoop sits above
  Spark in Fig 4;
* map output is combined (optionally), hash-partitioned, sorted and
  **spilled to the local SSD**;
* reduce tasks start once every map finished (we do not model slow-start),
  fetch one bucket per map over the cluster's Hadoop fabric, merge-sort,
  reduce, and either return results to the driver or write them to the
  output filesystem (with replication if it is HDFS);
* a failed attempt is retried on another node, up to ``max_attempts``
  (then :class:`~repro.errors.TaskFailedError` aborts the job).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.cluster.cluster import Cluster
from repro.costs import SoftwareCosts
from repro.errors import BlockUnavailableError, MapReduceError, TaskFailedError
from repro.fs.hdfs import HDFS
from repro.fs.records import read_split_records
from repro.sim.blocks import RecordBlock
from repro.mapreduce.types import FaultInjector, JobConf, JobCounters, JobResult
from repro.sim.engine import current_process
from repro.sim.sync import Mailbox
from repro.spark.partitioner import stable_hash
from repro.spark.shuffle import estimate_nbytes


class _InjectedFault(MapReduceError):
    """Raised inside a task attempt by the fault injector."""


class _JobState:
    """Shared state of one running job."""

    def __init__(self, cluster: Cluster, conf: JobConf, costs: SoftwareCosts,
                 fabric: str, fault_injector: FaultInjector | None) -> None:
        self.cluster = cluster
        self.conf = conf
        self.costs = costs
        self.fabric = fabric
        self.fault_injector = fault_injector
        self.counters = JobCounters()
        self.driver_box = Mailbox("mr:driver")
        scheme, _, path = conf.input_url.partition("://")
        self.fs = cluster.filesystems.get(scheme)
        if self.fs is None:
            raise MapReduceError(f"no filesystem for scheme {scheme!r}")
        self.path = path
        #: (map_id, reduce_id) -> records; map outputs live on map_node
        self.map_outputs: dict[tuple[int, int], list] = {}
        self.map_output_sizes: dict[tuple[int, int], int] = {}
        self.map_node: dict[int, int] = {}

    def splits(self) -> tuple[list[tuple[int, int]], list[list[int]]]:
        """Input splits + preferred nodes (HDFS block locality)."""
        size = self.fs.size(self.path)
        if self.conf.split_size is None and isinstance(self.fs, HDFS):
            locs = self.fs.block_locations(self.path)
            return [(s, e) for s, e, _n in locs], [n for _s, _e, n in locs]
        chunk = self.conf.split_size or 128 * 10**6
        splits = [(o, min(size, o + chunk)) for o in range(0, max(size, 1), chunk)]
        return splits, [[] for _ in splits]


def run_job(
    cluster: Cluster,
    conf: JobConf,
    *,
    map_slots_per_node: int = 8,
    reduce_slots_per_node: int = 8,
    fabric: str | None = None,
    costs: SoftwareCosts | None = None,
    fault_injector: FaultInjector | None = None,
) -> JobResult:
    """Run one MapReduce job to completion on the cluster's engine.

    ``fabric`` and ``costs`` default to the cluster's machine
    (``cluster.machine.bigdata_fabric`` / ``.costs``).
    """
    if fabric is None:
        fabric = cluster.machine.bigdata_fabric
    if costs is None:
        costs = cluster.machine.costs
    if conf.num_reduces < 1:
        raise MapReduceError("num_reduces must be >= 1")
    state = _JobState(cluster, conf, costs, fabric, fault_injector)
    driver = cluster.spawn(_driver_main, state, map_slots_per_node,
                           reduce_slots_per_node, node_id=0, name="mr:driver")
    elapsed = cluster.run()
    output, job_time = driver.result
    return JobResult(output=output, elapsed=job_time, counters=state.counters)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def _driver_main(state: _JobState, map_slots: int, reduce_slots: int) -> Any:
    proc = current_process()
    t0 = proc.clock
    proc.compute(state.costs.hadoop_job_submit)
    splits, preferred = state.splits()
    state.counters.map_tasks = len(splits)
    state.counters.reduce_tasks = state.conf.num_reduces

    map_attempts: dict[int, int] = {}

    def run_maps(task_ids: list[int]) -> None:
        _run_wave(state, "map", task_ids,
                  lambda tid: preferred[tid], map_slots,
                  lambda tid, node: (_map_attempt, state, tid, splits[tid]),
                  attempts=map_attempts)

    def recover_maps(lost: list[int]) -> None:
        """Re-execute map tasks whose output died with a crashed node.

        Hadoop's fetch-failure semantics: a reduce reporting missing map
        output blames the *map*, so the AM restarts the source maps on
        surviving nodes before the reduce retries.  Maps already re-run by
        an earlier report (the re-run shares the per-map attempt budget)
        are skipped.
        """
        stale = [m for m in lost
                 if state.map_node[m] in state.cluster.failed_nodes]
        if stale:
            run_maps(stale)

    run_maps(list(range(len(splits))))
    reduce_tasks = list(range(state.conf.num_reduces))
    results = _run_wave(state, "reduce", reduce_tasks,
                        lambda tid: [], reduce_slots,
                        lambda tid, node: (_reduce_attempt, state, tid,
                                           len(splits)),
                        recover=recover_maps)
    output: list = []
    for tid in sorted(results):
        output.extend(results[tid])
    return output, proc.clock - t0


def _run_wave(state: _JobState, kind: str, task_ids: list[int], preferred,
              slots_per_node: int, make_task, *,
              attempts: dict[int, int] | None = None,
              recover=None) -> dict[int, Any]:
    """Schedule one phase's tasks into node slots; handle retries.

    ``attempts`` shares one cumulative per-task retry budget across waves
    (lost-map re-execution re-enters the map wave with the original
    budget).  ``recover`` handles a ``"lost_maps"`` report — a reduce
    found source map output on a crashed node — by re-running those maps
    before the reduce is requeued.  Map slots and reduce slots are
    disjoint pools in Hadoop, so a recovery map wave nested inside the
    reduce wave contends for nothing the in-flight reduces hold.
    """
    proc = current_process()
    cluster = state.cluster
    free: dict[int, int] = {n.id: slots_per_node for n in cluster.nodes}
    queue = deque(task_ids)
    if attempts is None:
        attempts = {}
    for t in task_ids:
        attempts.setdefault(t, 0)
    in_flight: dict[int, int] = {}
    results: dict[int, Any] = {}

    def pick_node(tid: int) -> int | None:
        dead = cluster.failed_nodes
        pref = [n for n in preferred(tid)
                if free.get(n, 0) > 0 and n not in dead]
        if pref:
            return pref[0]
        avail = [n for n, k in free.items() if k > 0 and n not in dead]
        if not avail:
            return None
        # spread over nodes deterministically
        return avail[tid % len(avail)]

    def count_retry(tid: int, action: str, why: Any) -> None:
        state.counters.task_retries += 1
        cluster.trace.record(proc.clock, proc.name, "fault.recover",
                             framework="hadoop", action=action,
                             wave=kind, task=tid)
        if attempts[tid] >= state.conf.max_attempts:
            raise TaskFailedError(
                f"{kind} task {tid} failed {attempts[tid]} times: {why}")
        queue.append(tid)

    while queue or in_flight:
        proc.compute(state.costs.hadoop_schedule_wave / max(1, len(task_ids)))
        launched = False
        for _ in range(len(queue)):
            tid = queue.popleft()
            node = pick_node(tid)
            if node is None:
                queue.append(tid)
                break
            free[node] -= 1
            attempts[tid] += 1
            fn, *args = make_task(tid, node)
            cluster.spawn(fn, *args, attempts[tid], node_id=node,
                          name=f"mr:{kind}{tid}.{attempts[tid]}")
            in_flight[tid] = node
            launched = True
        if not in_flight:
            if not launched and queue:
                raise MapReduceError("no slots available at all")
            continue
        msg = state.driver_box.recv(
            proc, match=lambda m: m.meta["kind"] == kind,
            reason=f"mr:wait-{kind}")
        tid = msg.meta["task"]
        node = in_flight.pop(tid)
        free[node] += 1
        status = msg.meta["status"]
        if status == "ok" and node in cluster.failed_nodes:
            # the attempt's node crashed while it ran: whatever it produced
            # (spill, reduce output) died with the node
            status = "node_lost"
        if status == "ok":
            results[tid] = msg.payload
        elif status == "lost_maps":
            if recover is None:
                raise MapReduceError(
                    f"{kind} task {tid} reported lost map outputs "
                    f"{msg.payload} but this wave cannot recover them")
            count_retry(tid, "map_rerun", f"lost maps {msg.payload}")
            recover(sorted(set(msg.payload)))
        else:
            count_retry(tid, "task_retry", msg.payload)
    return results


# ---------------------------------------------------------------------------
# task attempts (each runs on its own simulated process)
# ---------------------------------------------------------------------------


def _report(state: _JobState, kind: str, tid: int, status: str, payload: Any) -> None:
    proc = current_process()
    nbytes = 64 + (estimate_nbytes(payload) if isinstance(payload, list) else 0)
    arrival = state.cluster.network.msg_arrival(
        proc, state.fabric, state.cluster.node_of(proc).id, 0, nbytes)
    state.driver_box.post(proc, payload, arrival=arrival, kind=kind,
                          task=tid, status=status)


def _maybe_fail(state: _JobState, kind: str, tid: int, attempt: int) -> None:
    if state.fault_injector is not None and state.fault_injector(kind, tid, attempt):
        raise _InjectedFault(f"{kind} task {tid} attempt {attempt} killed")


def _map_attempt(state: _JobState, tid: int, split: tuple[int, int],
                 attempt: int) -> None:
    proc = current_process()
    conf, costs = state.conf, state.costs
    try:
        proc.compute(costs.hadoop_task_jvm)
        _maybe_fail(state, "map", tid, attempt)
        records = read_split_records(state.fs, proc, state.path,
                                     split[0], split[1])
        proc.compute_bytes(max(1, split[1] - split[0]), costs.parse_rate_jvm)
        out: list[tuple[Any, Any]] = []
        if isinstance(records, RecordBlock):
            # one buffer-level decode (string-equal to per-record decode)
            for line in records.decode_all():
                out.extend(conf.mapper(line))
        else:
            for raw in records:
                out.extend(conf.mapper(raw.decode("utf-8", errors="replace")))
        proc.compute(len(records) * (conf.map_cost_per_record + 1e-7))
        state.counters.map_input_records += len(records)
        state.counters.map_output_records += len(out)
        if conf.combiner is not None:
            grouped: dict[Any, list] = {}
            get_group = grouped.get
            for k, v in out:
                vs = get_group(k)
                if vs is None:
                    grouped[k] = [v]
                else:
                    vs.append(v)
            out = [kv for k, vs in grouped.items()
                   for kv in conf.combiner(k, vs)]
            state.counters.combine_output_records += len(out)
        # Bucket in one pass with preallocated lists; keys repeat heavily
        # (word-count shaped output), so hash each distinct key once.
        num_reduces = conf.num_reduces
        buckets: list[list] = [[] for _ in range(num_reduces)]
        rid_of: dict[Any, int] = {}
        get_rid = rid_of.get
        for k, v in out:
            rid = get_rid(k)
            if rid is None:
                rid = rid_of[k] = stable_hash(k) % num_reduces
            buckets[rid].append((k, v))
        total = 0
        node = state.cluster.node_of(proc)
        trace = state.cluster.trace
        for rid in range(num_reduces):
            bucket = buckets[rid]
            nbytes = estimate_nbytes(bucket)
            trace.access(proc, "write", f"mr.spill[{tid},{rid}]")
            state.map_outputs[(tid, rid)] = bucket
            state.map_output_sizes[(tid, rid)] = nbytes
            total += nbytes
        # sort + spill to local disk (the defining Hadoop cost)
        proc.compute_bytes(max(1, total), costs.hadoop_sort_rate)
        node.ssd.write(proc, max(1, total), label=f"mr:spill{tid}")
        state.counters.spilled_bytes += total
        state.map_node[tid] = node.id
        _report(state, "map", tid, "ok", None)
    except (_InjectedFault, BlockUnavailableError) as exc:
        # BlockUnavailable: the split's HDFS replicas all died (node crash
        # at replication=1); the attempt fails like any task failure and
        # the retry budget decides whether the job survives
        _report(state, "map", tid, "failed", str(exc))


def _reduce_attempt(state: _JobState, tid: int, n_maps: int, attempt: int) -> None:
    proc = current_process()
    conf, costs = state.conf, state.costs
    try:
        proc.compute(costs.hadoop_task_jvm)
        _maybe_fail(state, "reduce", tid, attempt)
        my_node = state.cluster.node_of(proc)
        merged: list = []
        total = 0
        for mid in range(n_maps):
            proc.compute(costs.hadoop_fetch_overhead)
            if state.map_node[mid] in state.cluster.failed_nodes:
                # fetch failure: the serving node is gone, so every map
                # output it held is lost — report them all so the driver
                # re-executes the source maps before retrying this reduce
                lost = [m for m in range(n_maps)
                        if state.map_node[m] in state.cluster.failed_nodes]
                _report(state, "reduce", tid, "lost_maps", lost)
                return
            nbytes = max(1, state.map_output_sizes[(mid, tid)])
            src = state.map_node[mid]
            state.cluster.nodes[src].ssd.read(proc, nbytes, label="mr:serve")
            if src != my_node.id:
                state.cluster.network.transmit(
                    proc, state.fabric, src, my_node.id, nbytes,
                    label=f"mr:fetch{mid}->{tid}")
                state.counters.shuffled_bytes_remote += nbytes
            else:
                state.counters.shuffled_bytes_local += nbytes
            state.cluster.trace.access(proc, "read", f"mr.spill[{mid},{tid}]")
            merged.extend(state.map_outputs[(mid, tid)])
            total += nbytes
        # reduce-side merge sort
        proc.compute_bytes(max(1, total), costs.hadoop_sort_rate)
        grouped: dict[Any, list] = {}
        get_group = grouped.get
        for k, v in merged:
            vs = get_group(k)
            if vs is None:
                grouped[k] = [v]
            else:
                vs.append(v)
        out: list[tuple[Any, Any]] = []
        # sorted() evaluates the key function once per element, so each
        # distinct key is hashed exactly once here
        for k in sorted(grouped, key=stable_hash):
            out.extend(conf.reducer(k, grouped[k]))
        proc.compute(len(merged) * (conf.reduce_cost_per_record + 1e-7))
        state.counters.reduce_output_records += len(out)
        if conf.output_url is not None:
            scheme, _, path = conf.output_url.partition("://")
            ofs = state.cluster.filesystems[scheme]
            ofs.write(proc, f"{path}/part-r-{tid:05d}",
                      max(1, estimate_nbytes(out)))
        _report(state, "reduce", tid, "ok", out)
    except (_InjectedFault, BlockUnavailableError) as exc:
        _report(state, "reduce", tid, "failed", str(exc))
