"""Fig 7 — HiBench PageRank: Spark default vs Spark-RDMA.

Paper shape asserted: with the shuffle-heavy HiBench code, the RDMA
transport beats default Spark at every multi-node point, substantially so
at intermediate node counts.
"""

from conftest import record

from repro.core.figures import fig7
from repro.workloads.graphs import GraphSpec

NODES = (1, 2, 4, 8)


def test_bench_fig7_pagerank_hibench(benchmark):
    result = benchmark.pedantic(
        fig7,
        kwargs={"node_counts": NODES, "procs_per_node": 16,
                "graph": GraphSpec(n_vertices=1_000_000, out_degree=8),
                "iterations": 10},
        rounds=1, iterations=1)
    record(benchmark, result)
    spark, rdma = result.series
    for n in NODES:
        assert rdma.y_for(n) <= spark.y_for(n) * 1.01
    # a clear win at intermediate scale
    assert rdma.y_for(4) < spark.y_for(4) * 0.85
