#!/usr/bin/env python
"""Validate relative Markdown links (and their anchors) in the docs.

Walks the repo's Markdown surface — ``README.md``, the top-level ``*.md``
companions and everything under ``docs/`` — and checks every inline
``[text](target)`` link:

* external links (``http(s)://``, ``mailto:``) are skipped — CI must not
  depend on the network;
* relative targets must exist on disk (files or directories);
* ``#anchor`` fragments pointing into a Markdown file must match a heading
  in that file, using GitHub's slug rules (lowercased, punctuation dropped,
  spaces to hyphens).

Exit status is the number of broken links (0 = clean), so CI can run it
bare:

    python tools/check_docs_links.py
    python tools/check_docs_links.py docs/ README.md   # explicit roots
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# inline links/images: [text](target) — target taken up to the first
# unescaped ')' or ' ' (drops optional "title" parts)
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def rel(path: Path) -> str:
    """Repo-relative display path (absolute when outside the repo)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def github_slug(heading: str) -> str:
    """GitHub's heading→anchor slug: drop code spans' backticks, lowercase,
    strip everything but word characters/spaces/hyphens, spaces→hyphens."""
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(md_file: Path) -> set[str]:
    """All GitHub anchors a Markdown file exposes (duplicate headings get
    ``-1``, ``-2``, … suffixes, as on GitHub)."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in md_file.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(md_file: Path):
    """Yield ``(line_number, target)`` for every inline link outside code
    fences."""
    in_fence = False
    for lineno, line in enumerate(
            md_file.read_text(encoding="utf-8").splitlines(), start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(md_file: Path) -> list[str]:
    errors: list[str] = []
    for lineno, target in iter_links(md_file):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{rel(md_file)}:{lineno}: "
                              f"broken link target {target!r}")
                continue
        else:
            resolved = md_file  # pure-fragment link: '#section'
        if anchor and resolved.is_file() and resolved.suffix == ".md":
            if anchor not in heading_anchors(resolved):
                errors.append(f"{rel(md_file)}:{lineno}: "
                              f"anchor #{anchor} not found in "
                              f"{rel(resolved)}")
    return errors


def collect_roots(argv: list[str]) -> list[Path]:
    if argv:
        return [(REPO_ROOT / a).resolve() if not Path(a).is_absolute()
                else Path(a) for a in argv]
    roots = [REPO_ROOT / "docs"]
    roots.extend(sorted(REPO_ROOT.glob("*.md")))
    return roots


def main(argv: list[str]) -> int:
    files: list[Path] = []
    for root in collect_roots(argv):
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        elif root.suffix == ".md":
            files.append(root)
        else:
            print(f"not a Markdown file or directory: {root}", file=sys.stderr)
            return 1
    all_errors: list[str] = []
    for md_file in files:
        all_errors.extend(check_file(md_file))
    for err in all_errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} files, {len(all_errors)} broken links")
    return min(len(all_errors), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
