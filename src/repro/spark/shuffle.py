"""Shuffle: map-side bucket writes, reduce-side fetches, two transports.

Spark 1.5's hash shuffle, as the paper ran it:

* a **map task** partitions its output records by the shuffle's partitioner,
  serialises each bucket (JVM serialisation rate) and writes it to the
  node-local disk, then registers the bucket sizes with the driver-side
  map-output tracker;
* a **reduce task** asks the tracker where the buckets live and fetches one
  from every map task — local buckets come off the disk, remote ones over
  the network.

The transport is pluggable, mirroring Lu et al.'s RDMA-Spark (paper
Section VII): ``"socket"`` sends buckets over IPoIB with per-message CPU and
copy costs; ``"rdma"`` moves *shuffle payloads only* over the native
InfiniBand verbs path.  Orchestration stays on sockets in both cases —
exactly why RDMA gains nothing in Fig 3/Fig 6 and wins in Fig 7.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import SparkError
from repro.mpi.datatypes import nbytes_of
from repro.sim.process import SimProcess

#: transport name -> fabric name on the cluster
TRANSPORT_FABRICS = {"socket": "ipoib", "rdma": "ib-fdr-rdma"}

#: sample size for record-size estimation
_SAMPLE = 20


def estimate_nbytes(records: list) -> int:
    """Estimated serialised size of a record batch (sampled).

    Exact for small batches; for large ones the mean size of a sample is
    extrapolated — the same trick Spark's SizeEstimator uses.
    """
    n = len(records)
    if n == 0:
        return 0
    if n <= _SAMPLE:
        return sum(nbytes_of(r) for r in records) + 8 * n
    step = max(1, n // _SAMPLE)
    sample = records[::step][:_SAMPLE]
    mean = sum(nbytes_of(r) for r in sample) / len(sample)
    return int((mean + 8) * n)


class MapOutputTracker:
    """Driver-side registry of where every shuffle bucket lives."""

    def __init__(self) -> None:
        #: (shuffle_id, map_id) -> (executor_id, [bucket_nbytes per reduce])
        self._outputs: dict[tuple[int, int], tuple[int, list[int]]] = {}
        #: actual bucket payloads: (shuffle_id, map_id, reduce_id) -> records
        self._data: dict[tuple[int, int, int], list] = {}

    def register(self, shuffle_id: int, map_id: int, executor_id: int,
                 sizes: list[int], buckets: dict[int, list]) -> None:
        self._outputs[(shuffle_id, map_id)] = (executor_id, sizes)
        for reduce_id, records in buckets.items():
            self._data[(shuffle_id, map_id, reduce_id)] = records

    def unregister_executor(self, shuffle_ids: Iterable[int], executor_id: int) -> list[tuple[int, int]]:
        """Drop all outputs an executor held; returns the lost (shuffle, map) pairs."""
        lost = [
            key for key, (ex, _s) in self._outputs.items()
            if ex == executor_id
        ]
        for key in lost:
            del self._outputs[key]
            shuffle_id, map_id = key
            for k in [k for k in self._data if k[0] == shuffle_id and k[1] == map_id]:
                del self._data[k]
        return lost

    def outputs_for(self, shuffle_id: int, n_maps: int) -> list[tuple[int, int, int]]:
        """``(map_id, executor_id, nbytes)`` for one reduce partition's fetch
        plan; raises if any map output is missing (triggers stage rerun)."""
        plan = []
        for map_id in range(n_maps):
            entry = self._outputs.get((shuffle_id, map_id))
            if entry is None:
                raise SparkError(
                    f"missing map output: shuffle {shuffle_id} map {map_id}"
                )
            plan.append((map_id, entry[0], 0))
        return plan

    def missing_maps(self, shuffle_id: int, n_maps: int) -> list[int]:
        return [
            m for m in range(n_maps) if (shuffle_id, m) not in self._outputs
        ]

    def bucket(self, shuffle_id: int, map_id: int, reduce_id: int) -> tuple[int, int, list]:
        """``(executor_id, nbytes, records)`` of one bucket."""
        ex, sizes = self._outputs[(shuffle_id, map_id)]
        records = self._data.get((shuffle_id, map_id, reduce_id), [])
        return ex, sizes[reduce_id], records


class ShuffleWriter:
    """Map-side shuffle output (executor-side)."""

    def __init__(self, env: "Any") -> None:  # env: spark context runtime env
        self.env = env

    def write(self, proc: SimProcess, executor: "Any", shuffle_id: int,
              map_id: int, partitioner: "Any", records: list) -> None:
        """Partition ``records`` into buckets, spill to local disk, register."""
        costs = self.env.costs
        buckets: dict[int, list] = {}
        for rec in records:
            try:
                key = rec[0]
            except (TypeError, IndexError):
                raise SparkError(
                    f"shuffle input must be (key, value) pairs; got {rec!r}"
                ) from None
            buckets.setdefault(partitioner.partition(key), []).append(rec)
        scale = self.env.record_scale
        proc.compute(len(records) * scale * costs.spark_record_overhead)
        sizes = [0] * partitioner.num_partitions
        total = 0
        for reduce_id, bucket in buckets.items():
            nbytes = estimate_nbytes(bucket) * scale
            sizes[reduce_id] = nbytes
            total += nbytes
        proc.compute_bytes(max(1, total), costs.ser_rate_jvm)  # serialise
        # Shuffle files land in the OS page cache (Spark 1.5 writes them
        # without sync); charge the memory-system stream, not the SSD.
        executor.node.stream_bytes(proc, max(1, total), label="shuffle.write")
        self.env.tracker.register(shuffle_id, map_id, executor.executor_id,
                                  sizes, buckets)


class ShuffleReader:
    """Reduce-side shuffle input (executor-side)."""

    def __init__(self, env: "Any") -> None:
        self.env = env

    def read(self, proc: SimProcess, executor: "Any", shuffle_id: int,
             reduce_id: int, n_maps: int) -> list:
        """Fetch this reduce partition's bucket from every map output."""
        costs = self.env.costs
        transport = self.env.shuffle_transport
        fabric = TRANSPORT_FABRICS[transport]
        fetch_overhead = (costs.spark_shuffle_fetch_overhead
                          if transport == "socket"
                          else costs.spark_shuffle_fetch_overhead_rdma)
        # Fetches are batched per source node (as Netty/SEDA engines do):
        # one wire transfer per (reducer, remote node), so transfers stay
        # bulk-sized and contend for the NICs realistically.
        per_node: dict[int, int] = {}
        out: list = []
        total = 0
        for map_id in range(n_maps):
            src_executor, nbytes, records = self.env.tracker.bucket(
                shuffle_id, map_id, reduce_id
            )
            proc.compute(fetch_overhead)
            src_node = self.env.executors[src_executor].node
            per_node[src_node.id] = per_node.get(src_node.id, 0) + nbytes
            total += nbytes
            out.extend(records)
        for src_id in sorted(per_node):
            nbytes = max(1, per_node[src_id])
            if src_id == executor.node.id:
                # buckets are in the node's page cache: memory-speed copy,
                # no socket path involved
                executor.node.stream_bytes(proc, nbytes, label="shuffle.local")
            else:
                self.env.cluster.network.transmit(
                    proc, fabric, src_id, executor.node.id, nbytes,
                    label=f"shuffle:{shuffle_id}->{reduce_id}",
                )
                # transport CPU path: JVM sockets vs RDMA zero-copy
                rate = (costs.spark_shuffle_socket_rate
                        if transport == "socket"
                        else costs.spark_shuffle_rdma_rate)
                proc.compute_bytes(nbytes, rate)
        proc.compute_bytes(max(1, total), costs.ser_rate_jvm)  # deserialise
        return out
