"""AnswersCount in Spark: textFile -> parse -> aggregate, one pass."""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.spark import SparkContext
from repro.workloads.stackexchange import POST_ANSWER, POST_QUESTION, parse_post

#: modelled CPU per record for the comma-split + int parsing on the JVM
PARSE_COST = 0.35e-6


def spark_answers_count(
    cluster: Cluster,
    url: str,
    executors_per_node: int,
    *,
    executor_nodes: list[int] | None = None,
) -> tuple[float, float]:
    """``(app_seconds, average_answers)`` for the Spark implementation."""
    # <boilerplate>
    sc = SparkContext(cluster, executors_per_node=executors_per_node,
                      executor_nodes=executor_nodes)
    # </boilerplate>

    def app(sc: SparkContext) -> float:
        posts = sc.text_file(url).map(parse_post, cost=PARSE_COST)
        questions, answers = posts.aggregate(
            (0, 0),
            lambda acc, post: (
                acc[0] + (post[1] == POST_QUESTION),
                acc[1] + (post[1] == POST_ANSWER),
            ),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        return answers / questions if questions else 0.0

    result = sc.run(app)
    return result.app_elapsed, result.value
