"""reprolint: every rule has positive, negative and pragma-suppressed cases.

The fixtures under ``tests/fixtures/lint/`` are linted "as if" they lived
inside the deterministic packages via the ``relpath`` parameter — the same
mechanism that scopes rules inside the real tree.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.errors import AnalysisError

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def lint_fixture(name: str, relpath: str = "repro/sim/fixture.py"):
    return lint_source((FIXTURES / name).read_text(), relpath)


def codes(findings) -> list[str]:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# per-rule fixtures: positive + negative + pragma
# ---------------------------------------------------------------------------

FIXTURE_EXPECTATIONS = [
    ("wall_clock.py", "R001", 3),
    ("unseeded_random.py", "R002", 3),
    ("unordered_iter.py", "R003", 4),
    ("id_key.py", "R004", 4),
    ("swallowed_error.py", "R005", 3),
    ("real_sleep.py", "R007", 1),
    ("unstable_hash.py", "R008", 1),
    ("fs_order.py", "R009", 4),
]


@pytest.mark.parametrize("fixture,rule,count", FIXTURE_EXPECTATIONS)
def test_rule_positive_and_pragma(fixture, rule, count):
    """Each fixture yields exactly its marked findings — the 'good' and
    pragma-carrying lines contribute none."""
    findings = lint_fixture(fixture)
    assert codes(findings) == [rule] * count, render_text(findings)


def test_raw_thread_rule():
    """R010 fires outside repro/sim but not inside it — the simulator core
    legitimately builds on host threads."""
    findings = lint_fixture("raw_thread.py", "repro/spark/fixture.py")
    assert codes(findings) == ["R010"] * 2
    assert lint_fixture("raw_thread.py", "repro/sim/process.py") == []


def test_raw_park_rule():
    """R011 fires on direct parks in deterministic packages outside
    repro/sim; the simulator core parks its own processes legitimately,
    and generic .block() methods without the reason= keyword are not the
    simulator primitive."""
    findings = lint_fixture("raw_park.py", "repro/openmp/fixture.py")
    assert codes(findings) == ["R011"] * 2
    assert lint_fixture("raw_park.py", "repro/sim/sync.py") == []


def test_env_hatch_rule():
    # linted as a spark module: the sim hatch is foreign, REPRO_* must be
    # registered, and host-env reads are flagged in deterministic packages
    findings = lint_fixture("env_hatch.py", "repro/spark/fixture.py")
    assert codes(findings) == ["R006"] * 3
    messages = " ".join(f.message for f in findings)
    assert "repro/sim/engine.py" in messages       # points at the home
    assert "unregistered" in messages


def test_env_hatch_home_module_is_allowed():
    src = 'import os\nFLAG = os.environ.get("REPRO_SIM_SLOWPATH") == "1"\n'
    assert lint_source(src, "repro/sim/engine.py") == []
    assert codes(lint_source(src, "repro/sim/process.py")) == ["R006"]


def test_clean_fixture_is_clean():
    assert lint_fixture("clean.py") == []


def test_rules_scoped_to_deterministic_packages():
    """The same wall-clock fixture is fine in a host-side layer."""
    for relpath in ("repro/core/metrics.py", "repro/platform/driver.py",
                    "repro/analysis/lint.py", "repro/tools/profiler.py"):
        findings = lint_fixture("wall_clock.py", relpath)
        assert findings == [], relpath


def test_hygiene_rules_apply_everywhere():
    """R005 fires even outside the deterministic packages."""
    findings = lint_fixture("swallowed_error.py", "repro/core/report.py")
    assert codes(findings) == ["R005"] * 3


# ---------------------------------------------------------------------------
# suppression mechanics
# ---------------------------------------------------------------------------


def test_pragma_accepts_rule_code_and_all():
    src = "import time\nt = time.time()  # reprolint: disable=R001\n"
    assert lint_source(src, "repro/sim/x.py") == []
    src = "import time\nt = time.time()  # reprolint: disable=all\n"
    assert lint_source(src, "repro/sim/x.py") == []


def test_pragma_is_line_scoped():
    src = ("import time\n"
           "a = time.time()  # reprolint: disable=wall-clock\n"
           "b = time.time()\n")
    findings = lint_source(src, "repro/sim/x.py")
    assert [(f.rule, f.line) for f in findings] == [("R001", 3)]


def test_pragma_on_multiline_statement_end_line():
    src = ("import time\n"
           "a = (time.time() +\n"
           "     1.0)  # reprolint: disable=wall-clock\n")
    assert lint_source(src, "repro/sim/x.py") == []


def test_pragma_wrong_rule_does_not_suppress():
    src = "import time\nt = time.time()  # reprolint: disable=fs-order\n"
    assert codes(lint_source(src, "repro/sim/x.py")) == ["R001"]


# ---------------------------------------------------------------------------
# reporting + path walking
# ---------------------------------------------------------------------------


def test_findings_carry_location_and_sort_stably():
    findings = lint_fixture("wall_clock.py")
    assert all(f.path == "repro/sim/fixture.py" for f in findings)
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    assert all(f.col >= 1 for f in findings)


def test_render_json_roundtrip():
    findings = lint_fixture("real_sleep.py")
    doc = json.loads(render_json(findings))
    assert doc["count"] == 1
    (entry,) = doc["findings"]
    assert entry["rule"] == "R007"
    assert entry["name"] == RULES["R007"][0]
    assert entry["line"] == 6


def test_render_text_summary_line():
    assert render_text([]).endswith("reprolint: clean")
    out = render_text(lint_fixture("real_sleep.py"))
    assert out.endswith("reprolint: 1 finding")
    assert "R007" in out


def test_lint_paths_walks_directories_sorted():
    # fixtures are outside the repro package root, so determinism rules do
    # not apply — only hygiene findings remain: swallowed_error.py's
    # handlers plus env_hatch.py's foreign/unregistered escape hatches
    findings = lint_paths([FIXTURES])
    assert sorted(codes(findings)) == ["R005"] * 3 + ["R006"] * 2
    assert findings == sorted(findings, key=lambda f: f.sort_key())


def test_lint_paths_rejects_non_python():
    with pytest.raises(AnalysisError):
        lint_paths([FIXTURES / "missing.txt"])


def test_syntax_error_raises_analysis_error():
    with pytest.raises(AnalysisError):
        lint_source("def broken(:\n", "repro/sim/x.py")


def test_linted_source_tree_is_clean():
    """The acceptance gate: the repo's own src/ has zero unsuppressed
    findings (CI enforces the same via ``python -m repro.analysis lint``)."""
    src = Path(__file__).parent.parent / "src"
    assert lint_paths([src]) == []
