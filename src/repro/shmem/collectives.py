"""SHMEM collectives, built from signals and one-sided transfers.

OpenSHMEM collectives are implemented over the same RDMA machinery as the
puts/gets; ``barrier_all`` uses the dissemination pattern with tiny signal
messages, broadcast and reductions use get-from-peer trees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import current_process
from repro.sim.trace import call_site

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shmem.heap import SymmetricArray
    from repro.shmem.runtime import PE

#: signal payload size (a flag write)
_SIGNAL_BYTES = 8


def _enter(pe: "PE", op: str, *, root: int | None = None) -> None:
    """Record this PE's collective entry for the sanitizer (hb mode only)."""
    proc = current_process()
    trace = proc.engine.trace
    if not (trace.enabled and trace.hb):
        return
    trace.coll(
        proc, op, "shmem:world", parties=pe.n_pes, root=root,
        site=call_site(("repro/sim/", "repro/shmem/")),
    )


def _signal(pe: "PE", dest: int, tag: str, round_: int) -> None:
    proc = current_process()
    env = pe.env
    arrival = env.cluster.network.msg_arrival(
        proc, env.fabric,
        env.placement[pe.my_pe], env.placement[dest], _SIGNAL_BYTES,
    )
    env.signals[dest].post(proc, None, arrival=arrival, tag=tag,
                           src=pe.my_pe, round=round_)


def _wait_signal(pe: "PE", src: int, tag: str, round_: int) -> None:
    proc = current_process()
    env = pe.env
    env.signals[pe.my_pe].recv(
        proc,
        match=lambda m: (m.meta["tag"] == tag and m.meta["src"] == src
                         and m.meta["round"] == round_),
        reason=f"shmem.{tag}(pe={pe.my_pe})",
        waker=env.procs[src] if src < len(env.procs) else None,
    )


def barrier_all(pe: "PE") -> None:
    """Dissemination barrier over all PEs."""
    _enter(pe, "barrier_all")
    proc = current_process()
    proc.compute(pe.env.costs.shmem_barrier_base)
    p = pe.n_pes
    if p == 1:
        proc.checkpoint()
        return
    k = 1
    while k < p:
        _signal(pe, (pe.my_pe + k) % p, "barrier", k)
        _wait_signal(pe, (pe.my_pe - k) % p, "barrier", k)
        k <<= 1


def broadcast(pe: "PE", sym: "SymmetricArray", root: int) -> None:
    """Binomial-tree broadcast of ``root``'s copy into every PE's copy.

    Each non-root PE pulls from its tree parent once the parent signals that
    its copy is valid.
    """
    _enter(pe, "broadcast", root=root)
    p = pe.n_pes
    vrank = (pe.my_pe - root) % p
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = (pe.my_pe - mask) % p
            _wait_signal(pe, parent, "bcast", mask)
            data = pe.get(sym, parent)
            pe.local(sym)[:] = data
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < p:
            _signal(pe, (pe.my_pe + mask) % p, "bcast", mask)
        mask >>= 1
    barrier_all(pe)


def sum_to_all(pe: "PE", sym: "SymmetricArray") -> None:
    """Elementwise sum across PEs; the result lands in every PE's copy.

    Binomial-tree reduce onto PE 0 followed by a broadcast — the classic
    SHMEM reference implementation shape.
    """
    _enter(pe, "sum_to_all")
    proc = current_process()
    p = pe.n_pes
    mask = 1
    while mask < p:
        if pe.my_pe & mask == 0:
            partner = pe.my_pe | mask
            if partner < p:
                _wait_signal(pe, partner, "reduce", mask)
                data = pe.get(sym, partner)
                mine = pe.local(sym)
                mine += data
                proc.compute_bytes(max(8, mine.nbytes),
                                   pe.env.costs.reduce_rate_native)
        else:
            parent = pe.my_pe & ~mask
            _signal(pe, parent, "reduce", mask)
            break
        mask <<= 1
    broadcast(pe, sym, root=0)


def collect(pe: "PE", sym: "SymmetricArray") -> "object":
    """Concatenate all PEs' copies (``shmem_collect``); returns the result.

    Implemented as an all-gather of gets after a barrier.
    """
    import numpy as np

    _enter(pe, "collect")

    barrier_all(pe)
    parts = []
    for src in range(pe.n_pes):
        if src == pe.my_pe:
            parts.append(pe.local(sym).copy())
        else:
            parts.append(pe.get(sym, src))
    barrier_all(pe)
    return np.concatenate(parts)
