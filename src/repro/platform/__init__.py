"""Platform provisioning and experiment orchestration.

Two halves, one seam:

* :mod:`repro.platform.scenario` — the declarative :class:`ScenarioSpec`
  and the :class:`Session` that provisions cluster + filesystems + staged
  datasets + framework runtime handles exactly once per measured run;
* :mod:`repro.platform.driver` — the process-parallel experiment driver
  that shards registry experiments (and the independent points inside a
  figure's sweep) across worker subprocesses, emits per-unit manifests,
  and merges results bit-identically to serial execution.

Every entry layer — ``repro.core.figures``/``ablations``/``extras``/
``validate``, the profiler, the examples and the ``python -m repro`` CLI —
builds its platform here and nowhere else.

Fault plans declared on a spec (``ScenarioSpec(faults=...)``, see
:mod:`repro.faults`) are armed by the session at construction, so injected
failures are part of the provisioned platform like any other knob.
"""

from repro.platform.driver import (
    CachePlan,
    SuiteResult,
    Unit,
    UnitResult,
    check_golden,
    fingerprint_result,
    merge_results,
    plan_units,
    read_manifest,
    run_suite,
    unit_cache_key,
    write_manifests,
)
from repro.platform.scenario import (
    Dataset,
    HDFSSpec,
    ScenarioSpec,
    Session,
    comet,
    run_in,
    session_app,
)

__all__ = [
    "ScenarioSpec",
    "Session",
    "Dataset",
    "HDFSSpec",
    "comet",
    "run_in",
    "session_app",
    "run_suite",
    "plan_units",
    "merge_results",
    "fingerprint_result",
    "Unit",
    "UnitResult",
    "SuiteResult",
    "CachePlan",
    "unit_cache_key",
    "write_manifests",
    "read_manifest",
    "check_golden",
]
