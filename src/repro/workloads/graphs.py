"""Deterministic graph generators for the PageRank benchmarks.

BigDataBench and HiBench generate web-graph-like inputs (the paper uses a
1,000,000-vertex instance).  Real web graphs have heavy-tailed in-degree,
which is what skews PageRank's shuffle volume; we provide:

* :func:`powerlaw_digraph` — preferential-attachment-flavoured digraph with
  a heavy-tailed in-degree distribution (the realistic choice);
* :func:`uniform_digraph` — uniform random edges (a balanced control used
  by ablations).

Both are pure functions of their spec (no global RNG), so every framework
implementation of PageRank computes on bit-identical inputs and can be
cross-validated numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np


@dataclass(frozen=True)
class GraphSpec:
    """Shape of a generated digraph."""

    n_vertices: int = 1_000_000
    out_degree: int = 8
    seed: int = 42
    kind: str = "powerlaw"  # or "uniform"

    def generate(self) -> list[tuple[int, int]]:
        src, dst = self.generate_arrays()
        return list(zip(src.tolist(), dst.tolist()))

    def generate_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` edge arrays — the cheap representation for the
        vectorised (MPI/reference) implementations at paper scale."""
        if self.kind == "powerlaw":
            return _powerlaw_arrays(self.n_vertices, self.out_degree, self.seed)
        if self.kind == "uniform":
            return _uniform_arrays(self.n_vertices, self.out_degree, self.seed)
        raise ValueError(f"unknown graph kind {self.kind!r}")

    @property
    def n_edges(self) -> int:
        return self.n_vertices * self.out_degree


def _powerlaw_arrays(n: int, out_degree: int, seed: int = 42) -> tuple[np.ndarray, np.ndarray]:
    if n < 2:
        raise ValueError("graph needs at least 2 vertices")
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(n), out_degree)
    # Zipf over ranks, clipped into range; permute ids so "popular" vertices
    # are spread over the id space (realistic for hashed url ids)
    raw = rng.zipf(1.3, size=n * out_degree)
    targets = (raw - 1) % n
    perm = rng.permutation(n)
    dst = perm[targets]
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % n
    return src, dst


def _uniform_arrays(n: int, out_degree: int, seed: int = 42) -> tuple[np.ndarray, np.ndarray]:
    if n < 2:
        raise ValueError("graph needs at least 2 vertices")
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(n), out_degree)
    dst = rng.integers(0, n, size=n * out_degree)
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % n
    return src, dst


def powerlaw_digraph(n: int, out_degree: int, seed: int = 42) -> list[tuple[int, int]]:
    """Digraph whose edge *targets* follow a Zipf-like distribution.

    Every vertex has exactly ``out_degree`` outgoing edges; targets are
    drawn from a Zipf(1.3) distribution over vertex ids, giving the
    heavy-tailed in-degree of web graphs without the O(n^2) cost of true
    preferential attachment.  Self-loops are bumped to the next vertex.
    """
    src, dst = _powerlaw_arrays(n, out_degree, seed)
    return list(zip(src.tolist(), dst.tolist()))


def uniform_digraph(n: int, out_degree: int, seed: int = 42) -> list[tuple[int, int]]:
    """Digraph with uniformly random targets (balanced in-degree)."""
    src, dst = _uniform_arrays(n, out_degree, seed)
    return list(zip(src.tolist(), dst.tolist()))


def edge_arrays(edges) -> tuple[np.ndarray, np.ndarray]:
    """Normalise an edge list / array pair to ``(src, dst)`` arrays."""
    if isinstance(edges, tuple) and len(edges) == 2 and isinstance(
            edges[0], np.ndarray):
        return edges
    src = np.fromiter((s for s, _ in edges), np.int64, len(edges))
    dst = np.fromiter((d for _, d in edges), np.int64, len(edges))
    return src, dst


def with_ring_arrays(src: np.ndarray, dst: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Array twin of :func:`with_ring`."""
    ring_src = np.arange(n)
    ring_dst = (ring_src + 1) % n
    return np.concatenate([src, ring_src]), np.concatenate([dst, ring_dst])


def with_ring(edges: list[tuple[int, int]], n: int) -> list[tuple[int, int]]:
    """Append a ring ``i -> i+1 (mod n)`` so every vertex has in-degree >= 1.

    The textbook Spark PageRank (the paper's Fig 5 included) silently drops
    vertices that never receive a contribution; on ring-augmented graphs
    that set is empty, so the MPI, Spark and reference implementations are
    numerically identical and can be cross-validated exactly.
    """
    ring = [(i, (i + 1) % n) for i in range(n)]
    return edges + ring


def edge_list_content(edges) -> "LineContent":
    """The graph as a text file of ``"src dst"`` lines.

    Both benchmark suites feed PageRank an HDFS edge-list file; the Spark
    implementations parse it with ``textFile(...).map(...)``.
    """
    from repro.fs.content import LineContent

    src, dst = edge_arrays(edges)
    pairs = [f"{s} {d}" for s, d in zip(src.tolist(), dst.tolist())]
    return LineContent(lambda i: pairs[i], len(pairs))


@lru_cache(maxsize=8)
def ring_edge_list_content(spec: GraphSpec):
    """Memoised edge-list payload of ``spec``'s graph plus its ring.

    Identical bytes to ``edge_list_content(with_ring(spec.generate(),
    spec.n_vertices))`` — the array twin concatenates the same edges in
    the same order — but built once per spec, so node-count sweeps that
    rebuild clusters share one chunked payload.  With an artifact store
    active the rendered edge list is published to the dataset plane and
    mapped read-only, shared across worker processes.
    """
    from repro.cache import keyed_content

    def build():
        src, dst = with_ring_arrays(*spec.generate_arrays(), spec.n_vertices)
        return edge_list_content((src, dst))

    return keyed_content("ring-edge-list", spec, build)


def _register_graph_invalidation() -> None:
    from repro.cache import register_invalidation

    register_invalidation(ring_edge_list_content.cache_clear)


_register_graph_invalidation()


def adjacency(edges: list[tuple[int, int]], n: int) -> list[list[int]]:
    """Adjacency lists (out-neighbours) for a vertex range ``[0, n)``."""
    adj: list[list[int]] = [[] for _ in range(n)]
    for s, d in edges:
        adj[s].append(d)
    return adj


def reference_pagerank(edges, n: int,
                       iterations: int = 10, damping: float = 0.85) -> np.ndarray:
    """Sequential NumPy PageRank: the numerical ground truth.

    Uses the same update rule as the BigDataBench Spark code in the paper's
    Fig 5: ``rank = 0.15 + 0.85 * sum(contribs)`` — i.e. the *unnormalised*
    variant where ranks sum to ~n, not 1.  Dangling vertices contribute
    nothing (matching the benchmark codes, which simply drop them).

    ``edges`` may be a list of pairs or a ``(src, dst)`` array tuple.
    """
    src, dst = edge_arrays(edges)
    out_degree = np.bincount(src, minlength=n).astype(np.float64)
    ranks = np.ones(n)
    safe_deg = np.where(out_degree > 0, out_degree, 1.0)
    for _ in range(iterations):
        contrib_per_edge = ranks[src] / safe_deg[src]
        contribs = np.bincount(dst, weights=contrib_per_edge, minlength=n)
        ranks = (1 - damping) + damping * contribs
    return ranks
