"""R010 fixture: real concurrency outside repro/sim."""
import threading                       # finding: R010
from concurrent.futures import ThreadPoolExecutor   # finding: R010

import multiprocessing as mp  # reprolint: disable=raw-thread


def bad():
    return threading.Event(), ThreadPoolExecutor, mp
