"""The OpenMP team runtime: regions, barriers, reductions, critical, tasks."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.cluster.cluster import Cluster
from repro.costs import SoftwareCosts
from repro.errors import ConfigurationError, OpenMPError
from repro.openmp.loops import ChunkDispenser, Schedule, iterate, split_static
from repro.sim.engine import current_process
from repro.sim.sync import SimLock


@dataclass
class OMPResult:
    """Outcome of one parallel region."""

    #: per-thread return values of the region function
    returns: list[Any]
    #: virtual duration of the region (fork to last join), seconds
    elapsed: float


class _Team:
    """Shared state of one thread team (one parallel region)."""

    def __init__(self, cluster: Cluster, node_id: int, nthreads: int,
                 costs: SoftwareCosts) -> None:
        self.cluster = cluster
        self.node = cluster.nodes[node_id]
        self.nthreads = nthreads
        self.costs = costs
        self.locks: dict[str, SimLock] = {}
        self.tasks: deque[tuple[Callable, tuple]] = deque()
        self.dispensers: dict[int, ChunkDispenser] = {}
        self.reduce_slots: dict[int, list] = {}
        self.single_done: set[int] = set()
        # task-aware barrier state
        self.generation = 0
        self.arrived = 0
        self.max_arrival = 0.0
        self.release_time = 0.0
        self.sleepers: list = []
        #: team threads in tid order, filled by :func:`omp_run`; used by
        #: the deadlock diagnosis to name candidate wakers.
        self.procs: list = []

    def active_wakers(self, engine: Any, waiter: Any) -> list:
        """Team threads that can still release the barrier (diagnostics):
        everyone not already asleep at it."""
        return [p for p in self.procs
                if p is not waiter and not any(p is s for s in self.sleepers)]


class OMP:
    """Per-thread view of an OpenMP parallel region.

    The runtime passes one instance to each team thread; all methods charge
    the calling thread's virtual clock with the costs a real runtime incurs
    (region fork, barrier, dynamic-chunk grabs, task dispatch...).
    """

    def __init__(self, team: _Team, tid: int) -> None:
        self._team = team
        self.thread_num = tid

    # -- identity ------------------------------------------------------------------

    @property
    def num_threads(self) -> int:
        """Team size (``omp_get_num_threads``)."""
        return self._team.nthreads

    def wtime(self) -> float:
        """Virtual time (``omp_get_wtime``)."""
        return current_process().clock

    # -- cost charging ----------------------------------------------------------------

    def compute(self, seconds: float) -> None:
        """Charge CPU-bound work to this thread."""
        current_process().compute(seconds)

    def compute_bytes(self, nbytes: float, rate: float) -> None:
        """Charge CPU-bound streaming work at a fixed per-thread rate."""
        current_process().compute_bytes(nbytes, rate)

    def stream_bytes(self, nbytes: float) -> None:
        """Stream through the node's *shared* memory system (team threads
        contend for the node's memory bandwidth — what makes 16 threads
        less than 2x faster than 8 on a memory-bound scan)."""
        self._team.node.stream_bytes(current_process(), nbytes, label="omp")

    # -- worksharing --------------------------------------------------------------------

    def for_range(
        self,
        n: int,
        schedule: str | Schedule = Schedule.STATIC,
        chunk: int | None = None,
    ) -> Iterator[int]:
        """Iterations of a worksharing loop assigned to this thread.

        Equivalent to ``#pragma omp for schedule(...)`` over ``range(n)``.
        All team threads must reach every loop in the same order (the usual
        OpenMP requirement).  There is **no implied barrier** here; call
        :meth:`barrier` if the loop needs one (``nowait`` is the default
        because Python iteration makes the barrier placement explicit).
        """
        schedule = Schedule(schedule)
        if n < 0:
            raise OpenMPError(f"negative iteration count: {n}")
        if schedule is Schedule.STATIC:
            for r in split_static(n, self.num_threads, self.thread_num, chunk):
                yield from r
            return
        # dynamic/guided: one shared dispenser per loop instance
        disp = self._dispenser_for(n, schedule, chunk)
        proc = current_process()

        def charge() -> None:
            proc.compute(self._team.costs.omp_dynamic_chunk)
            proc.checkpoint()  # grabs happen in virtual-time order

        yield from iterate(disp, charge)

    def _dispenser_for(self, n: int, schedule: Schedule, chunk: int | None) -> ChunkDispenser:
        """Each thread's k-th dynamic loop shares the k-th dispenser."""
        key = getattr(self, "_loop_count", 0)
        self._loop_count = key + 1
        disp = self._team.dispensers.get(key)
        if disp is None:
            disp = ChunkDispenser(n, self.num_threads, schedule, chunk)
            self._team.dispensers[key] = disp
        elif disp.n != n or disp.schedule is not schedule:
            raise OpenMPError(
                "team threads reached different worksharing loops "
                f"(loop #{key}: n={disp.n} vs {n})"
            )
        return disp

    # -- synchronisation ---------------------------------------------------------------------

    def barrier(self) -> None:
        """``#pragma omp barrier`` — task-aware, as the spec requires.

        A thread waiting at a barrier executes queued tasks instead of
        idling; the barrier releases when every thread has arrived *and* the
        task pool is empty.  All threads leave at the same virtual time (the
        latest arrival / last task completion).
        """
        team = self._team
        proc = current_process()
        proc.compute(team.costs.omp_barrier)
        gen = team.generation
        team.arrived += 1
        team.max_arrival = max(team.max_arrival, proc.clock)
        while True:
            proc.checkpoint()
            if team.generation != gen:
                break  # released while we were parked or stealing
            if team.tasks:
                fn, args = team.tasks.popleft()
                proc.compute(team.costs.omp_task_overhead)
                fn(*args)
                team.max_arrival = max(team.max_arrival, proc.clock)
                continue
            if team.arrived == team.nthreads and proc.clock >= team.max_arrival:
                # last thread (in virtual time) with an empty pool: release
                team.generation += 1
                team.arrived = 0
                team.release_time = team.max_arrival
                team.max_arrival = 0.0
                sleepers, team.sleepers = team.sleepers, []
                for w in sleepers:
                    w._wake(team.release_time)
                break
            if team.arrived == team.nthreads:
                # everyone arrived but a later arrival exists: wait for it
                # (timed park, not a blocking wait — the task-aware barrier
                # owns its protocol and parks directly)
                proc.park_until(  # reprolint: disable=raw-park
                    team.max_arrival, reason="omp.barrier-exit")
                continue
            team.sleepers.append(proc)
            proc.block(  # reprolint: disable=raw-park
                reason="omp.barrier", obj=team, wakers=team.active_wakers)
        if team.release_time > proc.clock:
            proc.park_until(  # reprolint: disable=raw-park
                team.release_time, reason="omp.barrier-exit")

    def critical(self, name: str = "") -> "_Critical":
        """``#pragma omp critical [name]`` — a context manager."""
        lock = self._team.locks.setdefault(name, SimLock(f"omp.critical:{name}"))
        return _Critical(lock)

    def single(self) -> bool:
        """``#pragma omp single nowait``: True on exactly one thread per
        encounter.  Pair with :meth:`barrier` for the non-nowait form."""
        key = getattr(self, "_single_count", 0)
        self._single_count = key + 1
        current_process().checkpoint()
        if key in self._team.single_done:
            return False
        self._team.single_done.add(key)
        return True

    def master(self) -> bool:
        """``#pragma omp master``: True on thread 0 only."""
        return self.thread_num == 0

    def sections(self, *section_fns: Callable[[], Any]) -> list[Any]:
        """``#pragma omp sections``: run each function exactly once, spread
        over the team; returns the results (in section order) on every
        thread after the implied barrier."""
        key = getattr(self, "_sections_count", 0)
        self._sections_count = key + 1
        slot = self._team.reduce_slots.setdefault(("sections", key), {})
        proc = current_process()
        for idx in range(self.thread_num, len(section_fns), self.num_threads):
            proc.compute(self._team.costs.omp_task_overhead)
            slot[idx] = section_fns[idx]()
        self.barrier()
        return [slot[i] for i in range(len(section_fns))]

    # -- reductions ---------------------------------------------------------------------------

    def reduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Combine ``value`` across the team; every thread gets the result.

        Models the ``reduction(...)`` clause: thread partials are combined
        at the implicit barrier.  ``op`` defaults to ``+``.
        """
        key = getattr(self, "_reduce_count", 0)
        self._reduce_count = key + 1
        slot = self._team.reduce_slots.setdefault(key, [])
        slot.append(value)
        self.barrier()
        if len(slot) != self.num_threads:
            raise OpenMPError("reduce(): some thread skipped the reduction")
        acc = slot[0]
        for v in slot[1:]:
            acc = (op or (lambda a, b: a + b))(acc, v)
        current_process().compute(
            self._team.costs.omp_barrier * max(1, self.num_threads.bit_length())
        )
        self.barrier()
        return acc

    # -- tasks -------------------------------------------------------------------------------------

    def task(self, fn: Callable, *args: Any) -> None:
        """``#pragma omp task``: defer ``fn(*args)`` to the team's task pool.

        Wakes one thread idling at a barrier so it can steal the task.
        """
        proc = current_process()
        proc.compute(self._team.costs.omp_task_overhead)
        proc.checkpoint()
        self._team.tasks.append((fn, args))
        if self._team.sleepers:
            self._team.sleepers.pop(0)._wake(proc.clock)

    def taskwait(self) -> None:
        """Execute pending tasks until the pool is empty (cooperative
        draining: every thread reaching a taskwait/barrier helps)."""
        proc = current_process()
        while True:
            proc.checkpoint()  # pops happen in virtual-time order
            if not self._team.tasks:
                return
            fn, args = self._team.tasks.popleft()
            proc.compute(self._team.costs.omp_task_overhead)
            fn(*args)


class _Critical:
    def __init__(self, lock: SimLock) -> None:
        self._lock = lock

    def __enter__(self) -> None:
        self._lock.acquire(current_process())

    def __exit__(self, *exc: Any) -> None:
        self._lock.release(current_process())


def omp_run(
    cluster: Cluster,
    fn: Callable[..., Any],
    num_threads: int,
    *,
    node_id: int = 0,
    costs: SoftwareCosts | None = None,
    args: tuple = (),
) -> OMPResult:
    """Execute ``fn(omp, *args)`` as a parallel region of ``num_threads``.

    Threads are pinned to ``node_id`` — OpenMP is a single-node model, so
    asking for more threads than the node has cores raises
    :class:`~repro.errors.ConfigurationError` (the simulator does not model
    oversubscription).  ``costs`` defaults to the cluster's machine.
    """
    if costs is None:
        costs = cluster.machine.costs
    if num_threads < 1:
        raise ConfigurationError("num_threads must be >= 1")
    node = cluster.nodes[node_id]
    if num_threads > node.spec.cores:
        raise ConfigurationError(
            f"{num_threads} threads exceed the node's {node.spec.cores} cores"
        )
    team = _Team(cluster, node_id, num_threads, costs)
    procs = team.procs

    def thread_main(tid: int) -> Any:
        proc = current_process()
        proc.compute(costs.omp_region_overhead + num_threads * costs.omp_per_thread)
        omp = OMP(team, tid)
        result = fn(omp, *args)
        omp.barrier()  # implicit join barrier (drains tasks)
        return result

    from repro.faults.listeners import arm_hpc_abort, run_aborting

    arm_hpc_abort(cluster, runtime="OpenMP", nodes_used=(node_id,),
                  proc_prefixes=("omp:",))
    for tid in range(num_threads):
        procs.append(
            cluster.spawn(thread_main, tid, node_id=node_id, name=f"omp:t{tid}")
        )
    elapsed = run_aborting(cluster)
    return OMPResult(returns=[p.result for p in procs], elapsed=elapsed)
