"""Deterministic virtual-time discrete-event simulation substrate.

This subpackage is the foundation of the whole reproduction: every MPI rank,
OpenMP thread, OpenSHMEM PE, Spark driver/executor and MapReduce task is a
:class:`~repro.sim.process.SimProcess` — a real Python thread whose *virtual*
clock is coordinated by the :class:`~repro.sim.engine.Engine` so that exactly
one process runs at a time and all timed interactions happen in virtual-time
order.  The design follows the "threads over a simulation core" approach of
SimGrid/SST-macro: user code is ordinary imperative SPMD Python, and timing
comes from explicit cost models, never from the host's wall clock.

Public surface:

* :class:`Engine`, :class:`SimProcess`, :func:`current_process`
* :class:`FluidResource` — fair-share bandwidth resource (NICs, SSDs, NFS)
* :class:`FifoResource` — k-channel FIFO resource (CPU-ish serial devices)
* :class:`Mailbox`, :class:`SimBarrier`, :class:`Future` — rendezvous helpers
* :class:`Trace` — structured event trace used by tests and debugging
"""

from repro.sim.engine import Engine, current_process
from repro.sim.process import ProcState, SimProcess
from repro.sim.resources import FifoResource, FluidResource, Flow
from repro.sim.sync import Future, Mailbox, SimBarrier
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "Engine",
    "SimProcess",
    "ProcState",
    "current_process",
    "FluidResource",
    "FifoResource",
    "Flow",
    "Mailbox",
    "SimBarrier",
    "Future",
    "Trace",
    "TraceEvent",
]
