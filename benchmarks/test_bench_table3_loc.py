"""Table III — maintainability: LoC + boilerplate over the apps corpus.

Paper ordering asserted: Spark implementations need less code than their
MPI twins for every shared benchmark, and MPI carries the most
distribution boilerplate.
"""

from conftest import record

from repro.core.figures import table3


def test_bench_table3_loc(benchmark):
    result = benchmark.pedantic(table3, rounds=1, iterations=1)
    record(benchmark, result)

    def loc(bench: str, model: str) -> int:
        for row in result.rows:
            if row[0] == bench and row[1] == model:
                return int(row[2])
        raise KeyError((bench, model))

    def boiler(bench: str, model: str) -> int:
        for row in result.rows:
            if row[0] == bench and row[1] == model:
                return int(row[3])
        raise KeyError((bench, model))

    for bench in ("FileRead", "AnswersCount"):
        assert loc(bench, "Spark") < loc(bench, "MPI")
    assert boiler("PageRank", "MPI") > boiler("PageRank", "Spark")
    assert boiler("AnswersCount", "Hadoop") > boiler("AnswersCount", "Spark")
