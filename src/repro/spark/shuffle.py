"""Shuffle: map-side bucket writes, reduce-side fetches, two transports.

Spark 1.5's hash shuffle, as the paper ran it:

* a **map task** partitions its output records by the shuffle's partitioner,
  serialises each bucket (JVM serialisation rate) and writes it to the
  node-local disk, then registers the bucket sizes with the driver-side
  map-output tracker;
* a **reduce task** asks the tracker where the buckets live and fetches one
  from every map task — local buckets come off the disk, remote ones over
  the network.

The transport is pluggable, mirroring Lu et al.'s RDMA-Spark (paper
Section VII): ``"socket"`` sends buckets over IPoIB with per-message CPU and
copy costs; ``"rdma"`` moves *shuffle payloads only* over the native
InfiniBand verbs path.  Orchestration stays on sockets in both cases —
exactly why RDMA gains nothing in Fig 3/Fig 6 and wins in Fig 7.  Which
fabric each transport rides comes from the cluster's machine
(``cluster.machine.shuffle_fabrics``, resolved by the SparkContext).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable

from repro.errors import SparkError
from repro.mpi.datatypes import nbytes_of
from repro.sim.process import SimProcess
from repro.spark.partitioner import HashPartitioner

#: sample size for record-size estimation
_SAMPLE = 20

#: sentinel distinguishing "key absent" from any stored value
_MISSING = object()

#: shared empty bucket — lets reads of the same bucket set stay
#: identity-stable across calls (read-only by convention, like cached
#: partitions)
_EMPTY_BUCKET: list = []


def estimate_nbytes(records: list) -> int:
    """Estimated serialised size of a record batch (sampled).

    Exact for small batches; for large ones the mean size of a sample is
    extrapolated — the same trick Spark's SizeEstimator uses.
    """
    n = len(records)
    if n == 0:
        return 0
    if n <= _SAMPLE:
        total = 0
        for r in records:
            total += nbytes_of(r)
        return total + 8 * n
    step = max(1, n // _SAMPLE)
    sample = records[::step][:_SAMPLE]
    total = 0
    for r in sample:
        total += nbytes_of(r)
    return int((total / len(sample) + 8) * n)


class MapOutputTracker:
    """Driver-side registry of where every shuffle bucket lives."""

    def __init__(self) -> None:
        #: (shuffle_id, map_id) -> (executor_id, [bucket_nbytes per reduce])
        self._outputs: dict[tuple[int, int], tuple[int, list[int]]] = {}
        #: actual bucket payloads: (shuffle_id, map_id, reduce_id) -> records
        self._data: dict[tuple[int, int, int], list] = {}

    def register(self, shuffle_id: int, map_id: int, executor_id: int,
                 sizes: list[int], buckets: dict[int, list]) -> None:
        self._outputs[(shuffle_id, map_id)] = (executor_id, sizes)
        for reduce_id, records in buckets.items():
            self._data[(shuffle_id, map_id, reduce_id)] = records

    def unregister_executor(self, shuffle_ids: Iterable[int], executor_id: int) -> list[tuple[int, int]]:
        """Drop all outputs an executor held; returns the lost (shuffle, map) pairs."""
        lost = [
            key for key, (ex, _s) in self._outputs.items()
            if ex == executor_id
        ]
        for key in lost:
            del self._outputs[key]
            shuffle_id, map_id = key
            for k in [k for k in self._data if k[0] == shuffle_id and k[1] == map_id]:
                del self._data[k]
        return lost

    def outputs_for(self, shuffle_id: int, n_maps: int) -> list[tuple[int, int, int]]:
        """``(map_id, executor_id, nbytes)`` for one reduce partition's fetch
        plan; raises if any map output is missing (triggers stage rerun)."""
        plan = []
        for map_id in range(n_maps):
            entry = self._outputs.get((shuffle_id, map_id))
            if entry is None:
                raise SparkError(
                    f"missing map output: shuffle {shuffle_id} map {map_id}"
                )
            plan.append((map_id, entry[0], 0))
        return plan

    def missing_maps(self, shuffle_id: int, n_maps: int) -> list[int]:
        return [
            m for m in range(n_maps) if (shuffle_id, m) not in self._outputs
        ]

    def shuffle_stats(self) -> dict[int, dict[str, int]]:
        """Write-side aggregates per shuffle: map count, records, bytes.

        The profiler's per-phase view — each entry is one shuffle phase
        (HiBench PageRank shows the same link volume re-shuffled every
        iteration; BigDataBench shows it once).
        """
        stats: dict[int, dict[str, int]] = {}
        for (shuffle_id, _map_id), (_ex, sizes) in self._outputs.items():
            s = stats.setdefault(
                shuffle_id, {"maps": 0, "records": 0, "nbytes": 0})
            s["maps"] += 1
            s["nbytes"] += sum(sizes)
        for (shuffle_id, _m, _r), records in self._data.items():
            s = stats.get(shuffle_id)
            if s is not None:
                s["records"] += len(records)
        return stats

    def bucket(self, shuffle_id: int, map_id: int, reduce_id: int) -> tuple[int, int, list]:
        """``(executor_id, nbytes, records)`` of one bucket."""
        ex, sizes = self._outputs[(shuffle_id, map_id)]
        records = self._data.get((shuffle_id, map_id, reduce_id),
                                 _EMPTY_BUCKET)
        return ex, sizes[reduce_id], records


class ShuffleWriter:
    """Map-side shuffle output (executor-side)."""

    def __init__(self, env: "Any") -> None:  # env: spark context runtime env
        self.env = env

    @staticmethod
    def _sizes(bucket_lists: list[list], scale: int
               ) -> tuple[list[int], int, dict[int, list]]:
        """Per-reduce sizes, their total, and the non-empty buckets."""
        sizes = [0] * len(bucket_lists)
        total = 0
        buckets: dict[int, list] = {}
        for reduce_id, bucket in enumerate(bucket_lists):
            if not bucket:
                continue
            nbytes = estimate_nbytes(bucket) * scale
            sizes[reduce_id] = nbytes
            total += nbytes
            buckets[reduce_id] = bucket
        return sizes, total, buckets

    def write(self, proc: SimProcess, executor: "Any", shuffle_id: int,
              map_id: int, partitioner: "Any", records: list, *,
              combiner: tuple | None = None,
              vector: str | None = None) -> None:
        """Partition ``records`` into buckets, spill to local disk, register.

        Single pass over preallocated buckets.  When ``combiner`` is given
        (``(create, merge_value)`` of a map-side-combining aggregator), the
        combine happens *during* partitioning — per-bucket dicts replace
        the separate pre-combined list the two-pass path materialises.
        Charges are identical either way: the combine pass's per-record
        charge (input length) followed by the write's (output length).

        ``vector="sum"`` (the consuming RDD's declaration) enables the
        columnar combine + partition kernels on numeric pair partitions;
        bucket contents, per-bucket order and every charge are identical
        to the scalar pass (see :mod:`repro.sim.blocks`).
        """
        from repro.sim.blocks import (PairBlock, as_pair_block, blocks_enabled,
                                      partition_pairs, sum_by_key)

        costs = self.env.costs
        scale = self.env.record_scale
        part = partitioner.partition
        nparts = partitioner.num_partitions
        # Validate record shape once up front: a non-pair input fails here,
        # before any bucket is built, instead of mid-partitioning.
        if records:
            rec = records[0]
            try:
                rec[0]
            except (TypeError, IndexError):
                raise SparkError(
                    f"shuffle input must be (key, value) pairs; got {rec!r}"
                ) from None
        if combiner is None:
            # Iterative apps (HiBench PageRank) re-shuffle the *same cached
            # partition list* every iteration: same list object, same
            # partitioner, so the bucketing and size estimates are
            # identical.  Memoise them per (list identity, nparts) — the
            # held reference keeps the id from being recycled, and the
            # ``is`` check makes a stale hit impossible.  Charges are still
            # issued per call; only redundant host-side work is skipped.
            # Only the default HashPartitioner takes part (range bounds may
            # be unhashable, and a different partitioner kind with the same
            # nparts must not reuse these buckets).
            int_hash = type(partitioner) is HashPartitioner
            cache = hit = None
            if int_hash:
                cache = getattr(self.env, "shuffle_write_cache", None)
                if cache is None:
                    cache = self.env.shuffle_write_cache = OrderedDict()
                key = (id(records), nparts)  # reprolint: disable=id-key
                hit = cache.get(key)
                if hit is not None and hit[0] is not records:
                    hit = None
            if hit is not None:
                _, bucket_lists, sizes, total, buckets = hit
                cache.move_to_end(key)
            elif int_hash and isinstance(records, PairBlock):
                # columnar bucketing: same buckets, same order, same sizes
                bucket_lists = partition_pairs(records, nparts)
                sizes, total, buckets = self._sizes(bucket_lists, scale)
                if cache is not None:
                    cache[key] = (records, bucket_lists, sizes, total,
                                  buckets)
                    if len(cache) > 128:
                        cache.popitem(last=False)
            else:
                bucket_lists = [[] for _ in range(nparts)]
                # For exact-int keys under a HashPartitioner the hash is
                # the key itself masked to 31 bits — inline it and skip two
                # function calls per record on the dominant shuffle path.
                try:
                    for rec in records:
                        k = rec[0]
                        if int_hash and type(k) is int:
                            bucket_lists[(k & 0x7FFFFFFF) % nparts].append(rec)
                        else:
                            bucket_lists[part(k)].append(rec)
                except (TypeError, IndexError):
                    raise SparkError(
                        f"shuffle input must be (key, value) pairs; "
                        f"got {rec!r}"
                    ) from None
                sizes, total, buckets = self._sizes(bucket_lists, scale)
                if cache is not None:
                    cache[key] = (records, bucket_lists, sizes, total,
                                  buckets)
                    if len(cache) > 128:
                        cache.popitem(last=False)
            proc.compute(len(records) * scale * costs.spark_record_overhead)
        else:
            int_hash = type(partitioner) is HashPartitioner
            pair_block = None
            if vector == "sum" and int_hash and blocks_enabled():
                pair_block = as_pair_block(records)
            if pair_block is not None:
                # Columnar combining write: group-sum in first-occurrence
                # order (bitwise the dict combine, see sum_by_key), then
                # columnar bucketing.
                combined = sum_by_key(pair_block.keys, pair_block.values)
                bucket_lists = partition_pairs(combined, nparts)
            else:
                create, merge_value = combiner
                combined: dict = {}
                get = combined.get
                try:
                    for k, v in records:
                        prev = get(k, _MISSING)
                        combined[k] = (create(v) if prev is _MISSING
                                       else merge_value(prev, v))
                except TypeError as exc:
                    raise SparkError(
                        f"keyed operation over non-pair records: {exc}"
                    ) from exc
                # Partition the combined output (one hash per distinct key,
                # not per input record); per-bucket order is the dict's
                # first-occurrence order, identical to partitioning the
                # two-pass path's materialised combined list.
                bucket_lists = [[] for _ in range(nparts)]
                for kv in combined.items():
                    k = kv[0]
                    if int_hash and type(k) is int:
                        bucket_lists[(k & 0x7FFFFFFF) % nparts].append(kv)
                    else:
                        bucket_lists[part(k)].append(kv)
            # combine charge (input length), then write charge (combined)
            proc.compute(len(records) * scale * costs.spark_record_overhead)
            proc.compute(len(combined) * scale * costs.spark_record_overhead)
            sizes, total, buckets = self._sizes(bucket_lists, scale)
        proc.compute_bytes(max(1, total), costs.ser_rate_jvm)  # serialise
        # Shuffle files land in the OS page cache (Spark 1.5 writes them
        # without sync); charge the memory-system stream, not the SSD.
        executor.node.stream_bytes(proc, max(1, total), label="shuffle.write")
        trace = executor.node.trace
        if trace.hb:
            for reduce_id in buckets:
                trace.access(
                    proc, "write",
                    f"spark.shuffle{shuffle_id}[{map_id},{reduce_id}]")
        self.env.tracker.register(shuffle_id, map_id, executor.executor_id,
                                  sizes, buckets)


class ShuffleReader:
    """Reduce-side shuffle input (executor-side)."""

    def __init__(self, env: "Any") -> None:
        self.env = env

    def read(self, proc: SimProcess, executor: "Any", shuffle_id: int,
             reduce_id: int, n_maps: int) -> list:
        """Fetch this reduce partition's bucket from every map output."""
        costs = self.env.costs
        transport = self.env.shuffle_transport
        fabric = self.env.shuffle_fabric
        fetch_overhead = (costs.spark_shuffle_fetch_overhead
                          if transport == "socket"
                          else costs.spark_shuffle_fetch_overhead_rdma)
        # Fetches are batched per source node (as Netty/SEDA engines do):
        # one wire transfer per (reducer, remote node), so transfers stay
        # bulk-sized and contend for the NICs realistically.
        per_node: dict[int, int] = {}
        total = 0
        # The per-map fetch bookkeeping is host-side except the per-fetch
        # overhead charge; fold those clock additions locally (same float
        # adds, same order) and apply them as one equal-total advance.
        bucket = self.env.tracker.bucket
        executors = self.env.executors
        parts: list[list] = []
        clk = proc.clock
        for map_id in range(n_maps):
            src_executor, nbytes, records = bucket(
                shuffle_id, map_id, reduce_id
            )
            clk += fetch_overhead
            src_id = executors[src_executor].node.id
            per_node[src_id] = per_node.get(src_id, 0) + nbytes
            total += nbytes
            parts.append(records)
        proc.advance_clock_to(clk)
        trace = executor.node.trace
        if trace.hb:
            for map_id in range(n_maps):
                trace.access(
                    proc, "read",
                    f"spark.shuffle{shuffle_id}[{map_id},{reduce_id}]")
        # Iterative apps re-fetch byte-identical bucket sets (the write
        # side memoises its buckets per cached input list), so the
        # concatenation is identical across iterations.  Returning the
        # *same* list object lets per-partition consumers key their own
        # memos on list identity; like cached partitions, reduce inputs
        # are read-only by convention.
        cache = getattr(self.env, "shuffle_read_cache", None)
        if cache is None:
            cache = self.env.shuffle_read_cache = OrderedDict()
        # Safe id-keying: ``parts`` (the referents) are stored in the hit
        # alongside the key and re-checked with ``is`` before use.
        key = tuple(map(id, parts))  # reprolint: disable=id-key
        hit = cache.get(key)
        if hit is not None and all(a is b for a, b in zip(hit[0], parts)):
            out = hit[1]
            cache.move_to_end(key)
        else:
            from repro.sim.blocks import PairBlock

            filled = [p for p in parts if len(p)]
            if filled and all(isinstance(p, PairBlock) for p in filled):
                # columnar concatenation in map order — element-equal to
                # extending a list bucket by bucket
                import numpy as np

                out = PairBlock(
                    np.concatenate([p.keys for p in filled]),
                    np.concatenate([p.values for p in filled]))
            else:
                out = []
                for records in parts:
                    out.extend(records)
            cache[key] = (parts, out)
            if len(cache) > 128:
                cache.popitem(last=False)
        for src_id in sorted(per_node):
            nbytes = max(1, per_node[src_id])
            if src_id == executor.node.id:
                # buckets are in the node's page cache: memory-speed copy,
                # no socket path involved
                executor.node.stream_bytes(proc, nbytes, label="shuffle.local")
            else:
                self.env.cluster.network.transmit(
                    proc, fabric, src_id, executor.node.id, nbytes,
                    label=f"shuffle:{shuffle_id}->{reduce_id}",
                )
                # transport CPU path: JVM sockets vs RDMA zero-copy
                rate = (costs.spark_shuffle_socket_rate
                        if transport == "socket"
                        else costs.spark_shuffle_rdma_rate)
                proc.compute_bytes(nbytes, rate)
        proc.compute_bytes(max(1, total), costs.ser_rate_jvm)  # deserialise
        return out
