"""SparkContext: driver + executor processes over the simulated cluster.

The runtime model matches the paper's deployment: one driver process, one
single-core executor process per "core" (8 executors/node reproduces the
paper's "8 processes per node"), all long-running for the duration of the
application.  The driver parses and manages the RDD code and ships task
closures to executors (Section VI-B: "Spark code is parsed and managed by
the Spark driver program and code segments are then submitted to the
cluster machines for execution").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.costs import SoftwareCosts
from repro.errors import ConfigurationError, SparkError
from repro.sim.engine import current_process
from repro.sim.process import SimProcess
from repro.sim.sync import Mailbox
from repro.spark import scheduler as sched
from repro.spark.accumulator import Accumulator
from repro.spark.broadcast import Broadcast
from repro.spark.rdd import ParallelizeRDD, RDD, TextFileRDD
from repro.spark.shuffle import MapOutputTracker, estimate_nbytes
from repro.spark.storage import BlockManager
from repro.units import GiB

#: fraction of executor heap available for cached blocks (Spark 1.5's
#: storage fraction of the unified region)
STORAGE_FRACTION = 0.6

#: default virtual seconds charged for driver + executor container spin-up;
#: ``SparkJobResult.app_elapsed`` starts *after* this, so an absolute engine
#: time inside the app is ``DEFAULT_APP_STARTUP + fraction * app_elapsed``
#: (fault plans are scheduled in absolute engine time)
DEFAULT_APP_STARTUP = 4.0


class Executor:
    """One single-core executor (JVM) pinned to a node."""

    def __init__(self, executor_id: int, node: Node, memory: int,
                 costs: SoftwareCosts) -> None:
        self.executor_id = executor_id
        self.node = node
        self.mailbox = Mailbox(f"spark:executor{executor_id}")
        self.block_manager = BlockManager(
            executor_id, node, int(memory * STORAGE_FRACTION), costs)
        self.dead = False


class SparkEnv:
    """Shared runtime state of one Spark application."""

    def __init__(self, cluster: Cluster, costs: SoftwareCosts,
                 shuffle_transport: str, control_fabric: str,
                 driver_node: Node, record_scale: int = 1,
                 shuffle_fabric: str | None = None) -> None:
        self.cluster = cluster
        self.costs = costs
        #: logical records per physical record (the Spark twin of the
        #: filesystem ``scale``): multiplies per-record CPU charges, shuffle
        #: byte estimates and cache block sizes so a scaled-down dataset is
        #: *timed* as the paper-sized one.  Data values are untouched.
        self.record_scale = record_scale
        self.shuffle_transport = shuffle_transport
        #: fabric the shuffle transport rides (resolved from the cluster's
        #: machine by the SparkContext; overridable for direct env builds)
        self.shuffle_fabric = (shuffle_fabric if shuffle_fabric is not None
                               else cluster.machine.shuffle_fabric(
                                   shuffle_transport))
        self.control_fabric = control_fabric
        self.driver_node = driver_node
        self.driver_mailbox = Mailbox("spark:driver")
        self.tracker = MapOutputTracker()
        self.executors: list[Executor] = []
        self.cache_locations: dict[tuple, set[int]] = {}
        #: (rdd_id, partition) -> (records, nbytes): RDD.checkpoint storage,
        #: reliable by construction (survives any executor loss)
        self.checkpoint_store: dict[tuple, tuple[list, int]] = {}
        self.accumulators: dict[int, Accumulator] = {}
        #: TaskContext of the task currently running on each process
        self.active_ctx: dict[int, Any] = {}
        self._epoch = itertools.count()
        cluster.spark_envs.append(self)

    def next_epoch(self) -> int:
        return next(self._epoch)


@dataclass
class SparkJobResult:
    """Outcome of one Spark application run."""

    #: the application function's return value
    value: Any
    #: virtual duration of the whole application (incl. startup), seconds
    elapsed: float
    #: virtual duration of the application code only (excl. startup)
    app_elapsed: float


class SparkContext:
    """User entry point: configure once, then :meth:`run` an application.

    Parameters
    ----------
    cluster:
        The simulated hardware.
    executors_per_node:
        Single-core executors per node ("8 processes per node" in the
        paper's runs).
    executor_nodes:
        Optional subset of node ids to place executors on (the paper's
        Section V-B2 locality experiment restricts executors to fewer nodes
        than HDFS datanodes).
    executor_memory:
        Heap per executor; defaults to an even share of 80 % of node memory.
    shuffle_transport:
        ``"socket"`` (default Spark over IPoIB) or ``"rdma"`` (the shuffle
        plugin of Lu et al. — shuffle payloads only).  The transports a
        machine supports — and the fabric each rides — come from
        ``cluster.machine.shuffle_fabrics``.
    app_startup:
        Virtual seconds charged for spinning up driver + executors
        (YARN/standalone container launch); subtract via
        ``SparkJobResult.app_elapsed`` when measuring steady-state jobs.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        executors_per_node: int = 8,
        executor_nodes: list[int] | None = None,
        executor_memory: int | None = None,
        shuffle_transport: str = "socket",
        control_fabric: str | None = None,
        driver_node: int = 0,
        costs: SoftwareCosts | None = None,
        default_parallelism: int | None = None,
        app_startup: float = DEFAULT_APP_STARTUP,
        record_scale: int = 1,
    ) -> None:
        machine = cluster.machine
        # resolves the transport -> fabric routing and raises
        # ConfigurationError (listing this machine's transports) if the
        # machine doesn't support the requested one
        shuffle_fabric = machine.shuffle_fabric(shuffle_transport)
        if control_fabric is None:
            control_fabric = machine.bigdata_fabric
        if costs is None:
            costs = machine.costs
        self.cluster = cluster
        self.costs = costs
        nodes = executor_nodes if executor_nodes is not None else list(
            range(len(cluster.nodes)))
        for n in nodes:
            if not 0 <= n < len(cluster.nodes):
                raise ConfigurationError(f"executor node {n} out of range")
        if executors_per_node < 1:
            raise ConfigurationError("executors_per_node must be >= 1")
        self._executor_placement = [
            cluster.nodes[n] for n in nodes for _ in range(executors_per_node)
        ]
        if executor_memory is None:
            executor_memory = int(
                0.8 * cluster.spec.node.mem_bytes / executors_per_node)
        if executor_memory < 1 * 2**20:
            raise ConfigurationError("executor_memory must be >= 1 MiB")
        self.executor_memory = executor_memory
        if record_scale < 1:
            raise ConfigurationError("record_scale must be >= 1")
        self.env = SparkEnv(cluster, costs, shuffle_transport, control_fabric,
                            cluster.nodes[driver_node], record_scale,
                            shuffle_fabric=shuffle_fabric)
        self._scheduler = sched.DAGScheduler(self.env)
        self.default_parallelism = default_parallelism or len(
            self._executor_placement)
        self.app_startup = app_startup
        self._rdd_ids = itertools.count()
        self._accum_ids = itertools.count()
        self._ran = False

    # -- logical/physical scaling ------------------------------------------------------

    @property
    def record_scale(self) -> int:
        """Logical records per physical record (DESIGN.md §2).

        Settable from inside a running app so that workloads whose
        equivalent dataset size varies per step (e.g. the Fig 3 reduce
        sweep) can fold a physical sample while being *timed* as the
        full-size data.  Applies to tasks dispatched after the assignment.
        """
        return self.env.record_scale

    @record_scale.setter
    def record_scale(self, scale: int) -> None:
        if scale < 1:
            raise ConfigurationError("record_scale must be >= 1")
        self.env.record_scale = scale

    # -- RDD creation ------------------------------------------------------------------

    def parallelize(self, data: Any, num_partitions: int | None = None) -> RDD:
        """Distribute driver-local data (the Fig 2 pattern)."""
        data = list(data)
        n = num_partitions or self.default_parallelism
        if n < 1:
            raise SparkError("num_partitions must be >= 1")
        return ParallelizeRDD(self, data, n)

    def text_file(self, url: str, min_partitions: int | None = None) -> RDD:
        """Lines of ``scheme://path`` (``hdfs://``, ``local://``, ``nfs://``).

        HDFS files get one partition per block with locality preferences.
        """
        scheme, _, path = url.partition("://")
        if not path:
            raise SparkError(f"text_file needs scheme://path, got {url!r}")
        return TextFileRDD(self, scheme, path, min_partitions)

    # -- shared variables ----------------------------------------------------------------

    def broadcast(self, value: Any) -> Broadcast:
        """Ship a read-only value to every executor node once."""
        return Broadcast(self, value)

    def accumulator(self, zero: Any = 0,
                    add: Callable[[Any, Any], Any] | None = None) -> Accumulator:
        """A write-only (from tasks) aggregation variable."""
        acc = Accumulator(self, next(self._accum_ids), zero, add)
        self.env.accumulators[acc.id] = acc
        return acc

    # -- application execution ------------------------------------------------------------

    def run(self, app: Callable[["SparkContext"], Any]) -> SparkJobResult:
        """Launch executors + driver, run ``app(self)`` on the driver.

        Owns the cluster's engine for the duration (one application per
        cluster instance, like a dedicated YARN queue).
        """
        if self._ran:
            raise SparkError(
                "this SparkContext already ran an application; build a new "
                "Cluster + SparkContext per run (virtual time is monotonic)"
            )
        self._ran = True
        env = self.env
        for i, node in enumerate(self._executor_placement):
            env.executors.append(
                Executor(i, node, self.executor_memory, self.costs))
        t_app_start: list[float] = []

        def executor_main(ex: Executor) -> None:
            proc = current_process()
            proc.compute(self.app_startup)  # container + JVM spin-up
            while True:
                msg = ex.mailbox.recv(proc, reason=f"spark:executor{ex.executor_id}")
                kind = msg.meta.get("kind")
                if kind == "shutdown":
                    return
                if kind == "kill":
                    ex.dead = True
                    ex.block_manager.drop_all()
                    continue  # keep consuming; reply executor_lost to tasks
                if kind != "task":
                    raise SparkError(f"executor got unknown message {kind!r}")
                proc.compute(self.costs.spark_task_overhead)
                if ex.dead:
                    self._reply(proc, ex, msg, "executor_lost", None, {})
                    continue
                task_kind, a, partition, fn = msg.payload
                try:
                    if task_kind == "shuffle_map":
                        ctx = sched.run_shuffle_map_task(env, ex, a, partition)
                        result = None
                    else:
                        result, ctx = sched.run_result_task(
                            env, ex, a, partition, fn)
                    if ex.dead:
                        # the executor was killed mid-task (fault injection):
                        # the work is lost with the process
                        self._reply(proc, ex, msg, "executor_lost", None, {})
                        continue
                    self._reply(proc, ex, msg, "ok", result, ctx.accum_updates)
                except sched.FetchFailedError as ff:
                    self._reply(proc, ex, msg, "fetch_failed", None, {},
                                shuffle_id=ff.shuffle_id)
                except SparkError:
                    raise
                except Exception as exc:  # user code failed: report upstream
                    self._reply(proc, ex, msg, "error", exc, {})

        def driver_main() -> Any:
            proc = current_process()
            proc.compute(self.app_startup)
            t_app_start.append(proc.clock)
            try:
                return app(self)
            finally:
                for ex in env.executors:
                    ex.mailbox.post(proc, None, kind="shutdown")

        self.cluster.fault_listeners.append(self._on_fault)
        for ex in env.executors:
            self.cluster.spawn(executor_main, ex, node_id=ex.node.id,
                               name=f"spark:executor{ex.executor_id}")
        driver = self.cluster.spawn(driver_main, node_id=env.driver_node.id,
                                    name="spark:driver")
        elapsed = self.cluster.run()
        return SparkJobResult(
            value=driver.result,
            elapsed=elapsed,
            app_elapsed=driver.clock - t_app_start[0],
        )

    def _reply(self, proc: SimProcess, ex: Executor, msg: Any, status: str,
               payload: Any, accum: dict, **extra: Any) -> None:
        nbytes = 64 + (estimate_nbytes([payload]) if payload is not None else 0)
        proc.compute_bytes(nbytes, self.costs.ser_rate_jvm)
        env = self.env
        if nbytes >= 64 * 2**10:
            arrival = env.cluster.network.transmit(
                proc, env.control_fabric, ex.node.id, env.driver_node.id,
                nbytes, label="spark.result")
        else:
            arrival = env.cluster.network.msg_arrival(
                proc, env.control_fabric, ex.node.id, env.driver_node.id,
                nbytes)
        env.driver_mailbox.post(
            proc, payload, arrival=arrival,
            status=status, partition=msg.payload[2] if msg.payload else None,
            nbytes=nbytes, accum=accum, epoch=msg.meta.get("epoch"), **extra)

    # -- fault injection --------------------------------------------------------------------

    def kill_executor(self, executor_id: int) -> None:
        """Host-side fault injection: the executor's cached blocks and
        shuffle outputs vanish; its in-flight task (if any) is lost, and
        subsequent tasks sent to it fail with ``executor_lost`` and are
        rescheduled.  Recovery is pure lineage recomputation — the DAG
        scheduler re-runs only the missing map partitions and resubmitted
        result tasks (Section VI-D)."""
        ex = self.env.executors[executor_id]
        ex.dead = True
        ex.block_manager.drop_all()
        self._scheduler._on_executor_lost(executor_id)

    def _on_fault(self, plan: Any, t: float) -> None:
        """Cluster fault listener (:mod:`repro.faults`): translate injected
        faults into executor losses.  ``node_crash`` takes every executor
        on the node; ``proc_kill`` takes the named executor."""
        env = self.env
        if plan.kind == "node_crash":
            nid = int(plan.target)
            for ex in env.executors:
                if ex.node.id == nid and not ex.dead:
                    self.kill_executor(ex.executor_id)
        elif plan.kind == "proc_kill":
            name = str(plan.target)
            prefix = "spark:executor"
            if name.startswith(prefix) and name[len(prefix):].isdigit():
                eid = int(name[len(prefix):])
                if eid < len(env.executors) and not env.executors[eid].dead:
                    self.kill_executor(eid)

    # -- internals -----------------------------------------------------------------------------

    def _next_rdd_id(self) -> int:
        return next(self._rdd_ids)

    def _unpersist(self, rdd_id: int) -> None:
        for ex in self.env.executors:
            ex.block_manager.remove_rdd(rdd_id)
        for key in [k for k in self.env.cache_locations if k[0] == rdd_id]:
            del self.env.cache_locations[key]
