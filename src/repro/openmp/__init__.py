"""OpenMP-like shared-memory runtime (single node, fork-join).

Mirrors the directive semantics in a Pythonic shape: a parallel region is a
function executed by a team of threads on **one node** (OpenMP "cannot
target multiple system nodes", Section II-A), with worksharing loops
(static/dynamic/guided schedules), reductions, ``critical``/``single``/
``master`` constructs, barriers, and the OpenMP-3 task model.

Entry point::

    from repro.openmp import omp_run

    def region(omp):
        total = 0.0
        for i in omp.for_range(1000, schedule="dynamic", chunk=16):
            total += work(i)
        return omp.reduce(total)

    result = omp_run(cluster, region, num_threads=8)
"""

from repro.openmp.loops import Schedule, split_static
from repro.openmp.runtime import OMP, OMPResult, omp_run

__all__ = ["omp_run", "OMP", "OMPResult", "Schedule", "split_static"]
