"""Determinism and causality properties of the virtual-time engine.

The engine's core guarantee: a simulation is a pure function of its inputs
— re-running any program yields bit-identical virtual timings, regardless
of host scheduling, and per-process clocks never run backwards.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import COMET, Cluster
from repro.cluster.spec import TESTING
from repro.fs import HDFS, LineContent
from repro.mapreduce import JobConf, run_job
from repro.mpi import mpi_run
from repro.sim import Engine, Mailbox, current_process
from repro.sim.resources import FlowSystem, FluidResource
from repro.sim.trace import Trace
from repro.spark import SparkContext


def random_program(engine, fs, resources, boxes, actions):
    """Build a set of processes from a hypothesis-generated action script."""
    def proc_body(script):
        p = current_process()
        clocks = [p.clock]
        for kind, a, b in script:
            if kind == 0:
                p.compute(a / 1000)
            elif kind == 1:
                fs.transfer(p, (resources[a % len(resources)],),
                            float(b + 1) * 100)
            elif kind == 2:
                boxes[a % len(boxes)].post(p, b)
            else:
                msg = boxes[a % len(boxes)].try_recv(p)
                if msg is not None:
                    p.compute(0.001)
            assert p.clock >= clocks[-1], "clock ran backwards"
            clocks.append(p.clock)
        return p.clock

    return proc_body


@given(
    scripts=st.lists(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 5),
                           st.integers(0, 50)), max_size=8),
        min_size=1, max_size=5),
)
@settings(max_examples=25, deadline=None)
def test_arbitrary_programs_are_deterministic_and_monotone(scripts):
    def run_once():
        engine = Engine()
        fs = FlowSystem()
        resources = [FluidResource(f"r{i}", 1000.0) for i in range(3)]
        boxes = [Mailbox(f"b{i}") for i in range(2)]
        body = random_program(engine, fs, resources, boxes, scripts)
        procs = [engine.spawn(body, s, name=f"p{i}")
                 for i, s in enumerate(scripts)]
        engine.run()
        return [p.clock for p in procs]

    assert run_once() == run_once()


class TestEndToEndDeterminism:
    def test_mpi_job_bit_identical(self):
        def job(comm):
            import numpy as np

            data = np.full(4096, float(comm.rank))
            total = comm.allreduce(data)
            comm.barrier()
            return (float(total[0]), comm.wtime())

        r1 = mpi_run(Cluster(COMET.with_nodes(2)), job, 8, procs_per_node=4)
        r2 = mpi_run(Cluster(COMET.with_nodes(2)), job, 8, procs_per_node=4)
        assert r1.returns == r2.returns
        assert r1.elapsed == r2.elapsed

    def test_spark_job_bit_identical(self):
        def run_once():
            sc = SparkContext(Cluster(TESTING), executors_per_node=2,
                              app_startup=0.1)

            def app(sc):
                pairs = sc.parallelize([(i % 7, i) for i in range(500)], 6)
                return dict(pairs.reduce_by_key(lambda a, b: a + b, 3)
                            .collect())

            res = sc.run(app)
            return res.value, res.elapsed

        v1, t1 = run_once()
        v2, t2 = run_once()
        assert v1 == v2
        assert t1 == t2

    def test_engine_now_is_monotone(self):
        engine = Engine()
        observations = []

        def body(delay):
            p = current_process()
            for _ in range(5):
                p.sleep(delay)
                observations.append(engine.now)

        engine.spawn(body, 0.3, name="a")
        engine.spawn(body, 0.7, name="b")
        engine.run()
        assert observations == sorted(observations)

    def test_hash_randomization_does_not_leak(self):
        """Keys go through stable_hash, so partitioning is reproducible
        even though PYTHONHASHSEED varies between interpreter runs."""
        from repro.spark.partitioner import HashPartitioner, stable_hash

        part = HashPartitioner(7)
        assert [part.partition(k) for k in ("alpha", "beta", 42, b"x")] == [
            stable_hash("alpha") % 7, stable_hash("beta") % 7, 0,
            stable_hash(b"x") % 7]
        # regression pin: crc32-based values are stable across platforms
        assert stable_hash("alpha") == 4228598614
        assert stable_hash(42) == 42


def _trace_digest(trace: Trace) -> str:
    """Order-sensitive digest over every event field (byte-identity check)."""
    h = hashlib.sha256()
    for ev in trace:
        h.update(
            f"{ev.time.hex()}|{ev.proc}|{ev.kind}|"
            f"{sorted(ev.detail.items())!r}\n".encode()
        )
    return h.hexdigest()


@pytest.fixture(params=["fast", "slowpath", "nofuse"])
def sched_path(request, monkeypatch):
    """Run the test under every engine configuration: the fast path (token
    retention + direct handoff), the ``REPRO_SIM_SLOWPATH=1`` reference
    engine, and the ``REPRO_SPARK_NOFUSE=1`` op-by-op Spark data plane
    (fusion and the combining shuffle disabled)."""
    monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)
    monkeypatch.delenv("REPRO_SPARK_NOFUSE", raising=False)
    if request.param == "slowpath":
        monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    elif request.param == "nofuse":
        monkeypatch.setenv("REPRO_SPARK_NOFUSE", "1")
    return request.param


class TestGoldenCrossPath:
    """Golden workloads pinned to exact virtual-time outputs.

    The hex-float makespans and trace digests below were captured from the
    reference scheduler *before* the fast path existed.  Each workload must
    reproduce them byte-for-byte on the fast path and on the slow path —
    any scheduling-order divergence (a wrong heap pop, an unsafe token
    retention) changes the digest.
    """

    def _run_mpi(self):
        tr = Trace(enabled=True)
        cl = Cluster(COMET.with_nodes(2), trace=tr)

        def job(comm):
            import numpy as np

            data = np.full(1024, float(comm.rank + 1))
            total = comm.allreduce(data)
            comm.barrier()
            return float(total[0])

        res = mpi_run(cl, job, 8, procs_per_node=4)
        return (cl.engine.makespan().hex(), res.returns, len(tr.events),
                _trace_digest(tr))

    def test_mpi_collective_golden(self, sched_path):
        got = self._run_mpi()
        assert got == self._run_mpi()  # run-to-run identical
        makespan, returns, n_events, digest = got
        assert makespan == "0x1.0c518ef7eed3cp-2"
        assert returns == [36.0] * 8
        assert n_events == 36
        assert digest == ("68a67d5cc5d9c7797c79810bfcd8a243"
                          "0f7e1531eb918a35999975ff3989e519")

    def _run_spark(self):
        tr = Trace(enabled=True)
        cl = Cluster(TESTING, trace=tr)
        sc = SparkContext(cl, executors_per_node=2, app_startup=0.1)

        def app(sc):
            pairs = sc.parallelize([(i % 7, i) for i in range(300)], 6)
            return sorted(pairs.reduce_by_key(lambda a, b: a + b, 3).collect())

        res = sc.run(app)
        return (cl.engine.makespan().hex(), res.value, len(tr.events),
                _trace_digest(tr))

    def test_spark_shuffle_golden(self, sched_path):
        got = self._run_spark()
        assert got == self._run_spark()
        makespan, value, n_events, digest = got
        assert makespan == "0x1.f287c9b442498p-3"
        assert value == [(0, 6321), (1, 6364), (2, 6407), (3, 6450),
                         (4, 6493), (5, 6536), (6, 6279)]
        assert n_events == 9
        assert digest == ("e742bf07c8f1d0b57793be626547a88a"
                          "8f94a77c90309d4447518d7c84b4af83")

    def _run_mapreduce(self):
        tr = Trace(enabled=True)
        cl = Cluster(TESTING.with_nodes(2), trace=tr)
        h = HDFS(cl, block_size=2000, replication=2)
        h.create("corpus.txt",
                 LineContent(lambda i: f"alpha beta gamma{i % 4}", 200))
        conf = JobConf(
            name="wc",
            input_url="hdfs://corpus.txt",
            mapper=lambda line: [(w, 1) for w in line.split()],
            reducer=lambda k, vs: [(k, sum(vs))],
            num_reduces=3,
        )
        res = run_job(cl, conf)
        return (cl.engine.makespan().hex(), sorted(res.output),
                len(tr.events), _trace_digest(tr))

    def test_mapreduce_dynamic_spawn_golden(self, sched_path):
        # run_job spawns task attempts dynamically, exercising _push on a
        # process created while the engine is already running
        got = self._run_mapreduce()
        assert got == self._run_mapreduce()
        makespan, output, n_events, digest = got
        assert makespan == "0x1.8038801058ddcp+3"
        assert output == [("alpha", 200), ("beta", 200), ("gamma0", 50),
                          ("gamma1", 50), ("gamma2", 50), ("gamma3", 50)]
        assert n_events == 16
        assert digest == ("0f6f55c0c90c503bae5781d37404a2f6"
                          "51d583fba83e914f3172180103c21462")


class TestFusionDifferential:
    """Fused data plane vs the ``REPRO_SPARK_NOFUSE=1`` op-by-op reference.

    The knob disables both narrow-stage fusion and the combining shuffle
    write, so each fused app workload runs with one ``compute`` call per
    materialised stage again.  Results, hex-float makespans and trace
    digests must be byte-identical either way — fusion is a wall-clock
    optimisation, never a simulation change.
    """

    def _run(self, build):
        tr = Trace(enabled=True)
        cl = Cluster(COMET.with_nodes(2), trace=tr)
        t, value = build(cl)
        return (cl.engine.makespan().hex(), t.hex(), value,
                len(tr.events), _trace_digest(tr))

    @staticmethod
    def _answers_count(cl):
        from repro.apps.answerscount import spark_answers_count
        from repro.units import KiB
        from repro.workloads.stackexchange import (
            StackExchangeSpec, stackexchange_content)

        content = stackexchange_content(StackExchangeSpec(n_posts=2000))
        HDFS(cl, replication=2, block_size=128 * KiB).create(
            "posts.txt", content)
        return spark_answers_count(cl, "hdfs://posts.txt", 4)

    @staticmethod
    def _pagerank_edges(cl):
        from repro.workloads.graphs import (
            edge_list_content, uniform_digraph, with_ring)

        edges = with_ring(uniform_digraph(200, 3, seed=5), 200)
        HDFS(cl, replication=2).create("edges.txt", edge_list_content(edges))

    @staticmethod
    def _pagerank_bigdatabench(cl):
        from repro.apps.pagerank import spark_pagerank_bigdatabench

        TestFusionDifferential._pagerank_edges(cl)
        return spark_pagerank_bigdatabench(
            cl, "hdfs://edges.txt", 200, 4, iterations=3, collect_ranks=True)

    @staticmethod
    def _pagerank_hibench(cl):
        from repro.apps.pagerank import spark_pagerank_hibench

        TestFusionDifferential._pagerank_edges(cl)
        return spark_pagerank_hibench(
            cl, "hdfs://edges.txt", 200, 4, iterations=3, collect_ranks=True)

    @pytest.mark.parametrize("workload", [
        "answers_count", "pagerank_bigdatabench", "pagerank_hibench"])
    def test_fused_matches_nofuse(self, workload, monkeypatch):
        build = getattr(self, f"_{workload}")
        monkeypatch.delenv("REPRO_SPARK_NOFUSE", raising=False)
        fused = self._run(build)
        monkeypatch.setenv("REPRO_SPARK_NOFUSE", "1")
        nofuse = self._run(build)
        assert fused == nofuse
