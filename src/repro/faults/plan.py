"""Deterministic fault plans: what breaks, when, and where.

A :class:`FaultPlan` is a declarative description of one fault — it carries
no behaviour.  Plans become injections when a :class:`ScenarioSpec` lists
them and the session's :class:`~repro.faults.injector.FaultInjector` replays
them at their virtual times, so the same spec always produces the same
failure sequence: faults are part of the experiment's inputs, exactly like
dataset sizes or process counts.

For randomised campaigns, :func:`seeded_plans` derives plans from an integer
seed via SHA-256 (no RNG state, no global seeding), so a "random" crash is
still bit-reproducible across runs, machines and Python versions.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: the fault kinds the injector understands
KINDS = ("node_crash", "proc_kill", "disk_stall", "net_degrade")

#: kinds whose target is a node id (used by :func:`seeded_plans`)
_NODE_TARGETED = ("node_crash", "disk_stall")


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        * ``"node_crash"`` — the target node fails permanently: its HDFS
          datanode dies (reads fail over to surviving replicas, or raise
          :class:`~repro.errors.BlockUnavailableError` at replication=1),
          Spark executors on it are lost (the DAG scheduler recomputes
          their lineage), Hadoop task attempts and map outputs on it are
          re-executed elsewhere, and MPI/OpenMP/OpenSHMEM jobs touching it
          abort with :class:`~repro.errors.FaultAbortError`.
        * ``"proc_kill"`` — kill one long-running service process by name
          (e.g. ``"spark:executor3"``, ``"mpi:rank0"``).  Spark loses that
          executor and recovers; an HPC runtime whose process is named
          aborts the whole job, as ``mpirun`` would.
        * ``"disk_stall"`` — divide the target node's SSD read *and* write
          bandwidth by ``factor`` (a failing/contended device), optionally
          for ``duration`` virtual seconds.
        * ``"net_degrade"`` — divide every NIC's bandwidth on the target
          *fabric* (e.g. ``"ipoib"``) by ``factor``, optionally for
          ``duration`` virtual seconds.
    at:
        Virtual time of the injection, seconds from engine start.
    target:
        A node id (``node_crash``/``disk_stall``), a process name
        (``proc_kill``) or a fabric name (``net_degrade``).
    factor:
        Bandwidth-division factor for ``disk_stall``/``net_degrade``.
    duration:
        Length of the degradation window in virtual seconds; ``None``
        (default) degrades for the rest of the run.  Only meaningful for
        ``disk_stall``/``net_degrade`` — crashes are permanent.
    """

    kind: str
    at: float
    target: int | str
    factor: float = 8.0
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if not isinstance(self.at, (int, float)) or isinstance(self.at, bool) \
                or not math.isfinite(self.at) or self.at < 0:
            raise ConfigurationError(
                f"fault time must be a finite number >= 0, got {self.at!r}")
        if self.factor <= 0 or not math.isfinite(self.factor):
            raise ConfigurationError(
                f"fault factor must be finite and > 0, got {self.factor!r}")
        if self.duration is not None:
            if self.kind not in ("disk_stall", "net_degrade"):
                raise ConfigurationError(
                    f"{self.kind} faults are permanent; duration applies only "
                    "to disk_stall/net_degrade")
            if self.duration <= 0 or not math.isfinite(self.duration):
                raise ConfigurationError(
                    f"fault duration must be finite and > 0, "
                    f"got {self.duration!r}")


def _derive(seed: int, index: int, salt: str) -> float:
    """A uniform float in ``[0, 1)`` derived from ``(seed, index, salt)``.

    SHA-256 based so the value depends only on the arguments — no RNG
    object, no hidden state, identical on every platform.
    """
    digest = hashlib.sha256(f"{seed}:{index}:{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def seeded_plans(
    seed: int,
    *,
    nodes: int,
    count: int = 1,
    kinds: tuple[str, ...] = ("node_crash",),
    window: tuple[float, float] = (1.0, 30.0),
) -> tuple[FaultPlan, ...]:
    """``count`` bit-reproducible node-targeted plans derived from ``seed``.

    Each plan's kind, target node and injection time are hashed out of
    ``(seed, plan index)``; two calls with the same arguments return the
    same plans.  Only node-targeted kinds (``node_crash``, ``disk_stall``)
    can be generated — fabric/process targets need explicit plans.
    """
    if nodes < 1:
        raise ConfigurationError("seeded_plans needs nodes >= 1")
    for k in kinds:
        if k not in _NODE_TARGETED:
            raise ConfigurationError(
                f"seeded_plans can only draw node-targeted kinds "
                f"{_NODE_TARGETED}, got {k!r}")
    lo, hi = window
    if not (0 <= lo <= hi):
        raise ConfigurationError(f"bad time window {window!r}")
    plans = []
    for i in range(count):
        kind = kinds[int(_derive(seed, i, "kind") * len(kinds))]
        target = int(_derive(seed, i, "target") * nodes)
        at = lo + _derive(seed, i, "at") * (hi - lo)
        plans.append(FaultPlan(kind, at, target))
    return tuple(plans)
