"""Multi-tenant batch scheduling over the simulated cluster.

The paper benchmarks one framework run at a time; a production
Comet-class machine serves thousands of queued jobs under a SLURM-like
batch scheduler.  This package is that operational layer, kept fully
deterministic so it composes with the repository's fingerprint
discipline:

* :mod:`repro.sched.jobs` — the :class:`Job`/:class:`JobRecord` model
  (tenants, priorities, node requests, the requested-vs-used waste gap);
* :mod:`repro.sched.traffic` — the seeded synthetic trace generator
  (heavy-tailed sizes, bursty arrivals, mixed framework job kinds);
* :mod:`repro.sched.kinds` — job kinds that measure runtimes by running
  the real app adapters in machine-sized sessions (memoized per distinct
  configuration);
* :mod:`repro.sched.scheduler` — the virtual-time FCFS + conservative
  backfill scheduler with fair-share across tenants and ``job.*``
  lifecycle trace events;
* :mod:`repro.sched.metrics` — queue wait, utilization, bounded
  slowdown and resource waste over a computed schedule.

The ``sched-trace`` experiment (``python -m repro run sched-trace``)
wires these together: generate a trace, measure its runtimes on the
target machine, schedule it, report the metrics — one table row per
replication seed, sharded across workers bit-identically to a serial
run.  See ``docs/scheduler.md`` for the model and a walkthrough.

>>> from repro.sched import TraceProfile, generate_jobs, schedule
>>> jobs = generate_jobs(TraceProfile(n_jobs=4, seed=7, pool_nodes=8))
>>> outcome = schedule(jobs, {j.job_id: 60.0 for j in jobs}, pool_nodes=8)
>>> len(outcome.records)
4
"""

from repro.sched.jobs import Job, JobRecord
from repro.sched.kinds import (
    JOB_KINDS,
    JobKind,
    clear_runtime_memo,
    measure_runtimes,
)
from repro.sched.metrics import outcome_metrics
from repro.sched.scheduler import (
    POLICIES,
    BatchScheduler,
    SchedOutcome,
    schedule,
)
from repro.sched.traffic import (
    DEFAULT_TENANTS,
    TenantSpec,
    TraceProfile,
    generate_jobs,
)

__all__ = [
    "Job",
    "JobRecord",
    "JobKind",
    "JOB_KINDS",
    "measure_runtimes",
    "clear_runtime_memo",
    "BatchScheduler",
    "SchedOutcome",
    "schedule",
    "POLICIES",
    "TenantSpec",
    "TraceProfile",
    "DEFAULT_TENANTS",
    "generate_jobs",
    "outcome_metrics",
]
