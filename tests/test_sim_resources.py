"""Unit tests for fluid fair-share and FIFO resources."""

from __future__ import annotations

import pytest

from repro.errors import SimProcessError
from repro.sim import Engine, FifoResource, FluidResource, current_process
from repro.sim.resources import FlowSystem


def run_transfers(specs, capacity=100.0, efficiency=None):
    """Run transfers through one shared resource.

    ``specs`` is a list of ``(start_delay, nbytes)``; returns the completion
    time of each transfer, in spec order.
    """
    eng = Engine()
    fs = FlowSystem()
    res = FluidResource("r", capacity, efficiency=efficiency)
    done = [None] * len(specs)

    def proc(i, delay, nbytes):
        p = current_process()
        p.compute(delay)
        done[i] = fs.transfer(p, (res,), nbytes, label=f"t{i}")

    for i, (delay, nbytes) in enumerate(specs):
        eng.spawn(proc, i, delay, nbytes, name=f"p{i}")
    eng.run()
    return done


class TestFluidSingleResource:
    def test_solo_transfer_full_bandwidth(self):
        done = run_transfers([(0.0, 1000.0)], capacity=100.0)
        assert done[0] == pytest.approx(10.0)

    def test_two_equal_transfers_share_fairly(self):
        # Both start at t=0, 1000 bytes each at 100 B/s total -> both done at 20.
        done = run_transfers([(0.0, 1000.0), (0.0, 1000.0)], capacity=100.0)
        assert done[0] == pytest.approx(20.0)
        assert done[1] == pytest.approx(20.0)

    def test_late_arrival_slows_first_flow(self):
        # Flow A: 1000 B alone from t=0 at 100 B/s.  B arrives at t=5 with
        # 250 B.  From t=5 both run at 50 B/s; B finishes at t=10; A then has
        # 250 B left at full rate -> A done at 12.5.
        done = run_transfers([(0.0, 1000.0), (5.0, 250.0)], capacity=100.0)
        assert done[1] == pytest.approx(10.0)
        assert done[0] == pytest.approx(12.5)

    def test_finish_releases_bandwidth_early(self):
        # A (200 B) and B (1000 B) both start at t=0 at 50 B/s each.
        # A done at t=4; B then speeds up: 800 B left at 100 B/s -> t=12.
        done = run_transfers([(0.0, 200.0), (0.0, 1000.0)], capacity=100.0)
        assert done[0] == pytest.approx(4.0)
        assert done[1] == pytest.approx(12.0)

    def test_zero_byte_transfer_is_free(self):
        done = run_transfers([(3.0, 0.0)])
        assert done[0] == pytest.approx(3.0)

    def test_efficiency_curve_degrades_aggregate(self):
        # 3 concurrent flows with eff(3)=0.5: aggregate 50 B/s -> each 16.66.
        eff = lambda n: 0.5 if n >= 3 else 1.0  # noqa: E731
        done = run_transfers(
            [(0.0, 100.0)] * 3, capacity=100.0, efficiency=eff
        )
        # all three finish together: 300 bytes / 50 Bps = 6.0
        for d in done:
            assert d == pytest.approx(6.0)

    def test_many_flows_conserve_work(self):
        # Total bytes / capacity is a lower bound on the last completion.
        specs = [(i * 0.1, 100.0 * (i + 1)) for i in range(10)]
        done = run_transfers(specs, capacity=123.0)
        total = sum(n for _, n in specs)
        assert max(done) >= total / 123.0 - 1e-6

    def test_negative_size_rejected(self):
        with pytest.raises(SimProcessError):
            run_transfers([(0.0, -5.0)])


class TestFluidMultiResource:
    def test_flow_rate_is_min_share_across_resources(self):
        """Incast: two senders, one receiver NIC is the bottleneck."""
        eng = Engine()
        fs = FlowSystem()
        tx = [FluidResource(f"tx{i}", 100.0) for i in range(2)]
        rx = FluidResource("rx", 100.0)
        done = [None, None]

        def sender(i):
            p = current_process()
            done[i] = fs.transfer(p, (tx[i], rx), 500.0, label=f"s{i}")

        eng.spawn(sender, 0, name="s0")
        eng.spawn(sender, 1, name="s1")
        eng.run()
        # Each sender has a private 100 B/s tx but shares rx: 50 B/s each.
        assert done[0] == pytest.approx(10.0)
        assert done[1] == pytest.approx(10.0)

    def test_rate_cap_clamps_flow(self):
        eng = Engine()
        fs = FlowSystem()
        res = FluidResource("r", 1000.0)
        done = {}

        def proc():
            p = current_process()
            done["t"] = fs.transfer(p, (res,), 100.0, rate_cap=10.0)

        eng.spawn(proc, name="p")
        eng.run()
        assert done["t"] == pytest.approx(10.0)

    def test_flow_system_empties_after_run(self):
        eng = Engine()
        fs = FlowSystem()
        res = FluidResource("r", 10.0)

        def proc():
            fs.transfer(current_process(), (res,), 100.0)

        eng.spawn(proc, name="p")
        eng.run()
        assert fs.active_count == 0
        assert len(res.flows) == 0


class TestFifoResource:
    def test_serial_operations_queue(self):
        eng = Engine()
        res = FifoResource("disk", channels=1)
        done = []

        def proc(delay):
            p = current_process()
            p.compute(delay)
            res.use(p, 10.0)
            done.append((p.name, p.clock))

        eng.spawn(proc, 0.0, name="a")
        eng.spawn(proc, 1.0, name="b")
        eng.run()
        times = dict(done)
        assert times["a"] == pytest.approx(10.0)
        assert times["b"] == pytest.approx(20.0)  # queued behind a

    def test_channels_allow_parallelism(self):
        eng = Engine()
        res = FifoResource("disk", channels=2)
        done = []

        def proc():
            p = current_process()
            res.use(p, 10.0)
            done.append(p.clock)

        for i in range(2):
            eng.spawn(proc, name=f"p{i}")
        eng.run()
        assert done == [pytest.approx(10.0)] * 2

    def test_acquire_returns_window(self):
        res = FifoResource("r")
        s1, e1 = res.acquire(0.0, 5.0)
        s2, e2 = res.acquire(1.0, 5.0)
        assert (s1, e1) == (0.0, 5.0)
        assert (s2, e2) == (5.0, 10.0)


class TestContentionFastPaths:
    """Regressions for the uncontended fast paths added to this module."""

    def test_fifo_contended_order_is_arrival_order(self):
        # Five single-channel users arriving at staggered virtual times must
        # be served strictly in arrival order (FIFO), with no overlap — the
        # single-channel idx=0 fast path must not reorder the queue.
        eng = Engine()
        res = FifoResource("dev", channels=1)
        windows = []

        def proc(i):
            p = current_process()
            p.compute(i * 1.0)  # arrive at t=i
            start_clock = p.clock
            res.use(p, 10.0)
            windows.append((i, start_clock, p.clock))

        for i in range(5):
            eng.spawn(proc, i, name=f"p{i}")
        eng.run()
        windows.sort()
        ends = [w[2] for w in windows]
        # strict FIFO: process i ends at (i+1)*10 despite arriving at t=i
        assert ends == [pytest.approx((i + 1) * 10.0) for i in range(5)]

    def test_fifo_same_arrival_served_in_pid_order(self):
        # Equal arrival times tie-break on pid (spawn order), matching the
        # engine's deterministic (clock, pid) schedule.
        eng = Engine()
        res = FifoResource("dev", channels=1)
        ends = {}

        def proc(i):
            p = current_process()
            res.use(p, 5.0)
            ends[i] = p.clock

        for i in range(3):
            eng.spawn(proc, i, name=f"p{i}")
        eng.run()
        assert [ends[i] for i in range(3)] == [
            pytest.approx(5.0), pytest.approx(10.0), pytest.approx(15.0)]

    def test_uncontended_transfer_matches_contended_formula(self):
        # A solo flow (restricted recompute) prices identically to the same
        # flow passing through the full recompute with a zero-byte companion.
        solo = run_transfers([(0.0, 1000.0)], capacity=100.0)
        with_noop = run_transfers([(0.0, 1000.0), (3.0, 0.0)], capacity=100.0)
        assert solo[0] == with_noop[0] == pytest.approx(10.0)

    def test_remove_skips_recompute_when_system_drains(self):
        # Back-to-back solo transfers: the system empties between them and
        # the second still prices at full bandwidth.
        eng = Engine()
        fs = FlowSystem()
        res = FluidResource("r", 100.0)
        done = []

        def proc():
            p = current_process()
            done.append(fs.transfer(p, (res,), 500.0))
            done.append(fs.transfer(p, (res,), 500.0))

        eng.spawn(proc, name="p")
        eng.run()
        assert done == [pytest.approx(5.0), pytest.approx(10.0)]
        assert fs.active_count == 0
