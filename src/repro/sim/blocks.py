"""Columnar record blocks: the vectorized data plane (PR 6).

The simulator's data plane historically moved Python objects one at a
time: a text split became a ``list[bytes]``, a Spark partition a
``list[tuple]``, an MPI contribution vector a dense ``ndarray`` sliced
per destination rank.  Per-record Python overhead — not the scheduler —
dominated wall time, exactly the effect the surveyed papers report for
real Spark-on-HPC deployments (serialization and object churn).

This module introduces the block types that replace those hot lists with
numpy-backed columns, under one inviolable rule:

**The charge-replay rule.**  A block kernel may reorganize *host-side*
computation freely, but it must issue the exact same sequence of
virtual-time charges (same float values, same order, same owning
process) as the scalar path, and produce bitwise-identical record
values.  Anything observable in virtual time — event order, clock
values, fingerprints — is then unchanged by construction.

Escape hatch: ``REPRO_SPARK_SCALAR=1`` disables every block path at once
(this module is its registered home; see ``repro.analysis.lint``).  CI
runs the scalar and block planes differentially and asserts byte-equal
fingerprints, mirroring the SLOWPATH and NOFUSE hatches.

Block types
-----------
``RecordBlock``
    A split's worth of newline-delimited records backed by one ``bytes``
    buffer.  Slicing is zero-copy (offset views over the shared buffer);
    ``decode_all`` decodes the whole buffer in one C call instead of
    per-record.  Behaves as a ``Sequence[bytes]`` equal to the list the
    scalar reader returns.
``PairBlock``
    An ``(int64 keys, float64 values)`` column pair for Spark shuffle
    output of numeric aggregations.  Behaves as a ``Sequence`` of
    ``(int, float)`` tuples; slicing is zero-copy.
``ContribBlock``
    A sparse per-destination-rank PageRank contribution vector
    (indices + values + logical dense length).  Sized and summed as if
    it were the dense ``float64`` slice it replaces, so MPI eager /
    rendezvous protocol choices and combine charges are unchanged.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from typing import Iterator

import numpy as np

__all__ = [
    "blocks_enabled",
    "RecordBlock",
    "PairBlock",
    "ContribBlock",
    "sum_by_key",
    "as_pair_block",
    "partition_pairs",
]


def blocks_enabled() -> bool:
    """True unless ``REPRO_SPARK_SCALAR=1`` forces the scalar data plane.

    Read at every call site (not cached) so tests can flip the hatch
    between experiments within one process.
    """
    return os.environ.get("REPRO_SPARK_SCALAR", "") != "1"


# ---------------------------------------------------------------------------
# RecordBlock: newline-delimited byte records over one shared buffer
# ---------------------------------------------------------------------------


class RecordBlock(Sequence):
    """Records of a text split as one buffer plus lazy line offsets.

    Equal to (and substitutable for) the ``list[bytes]`` of lines the
    scalar reader produced: no trailing newlines, trailing empty line
    dropped.  ``len`` is O(1) amortized (one ``bytes.count``); slicing
    returns a view sharing the buffer; full iteration materializes the
    line list once (a single C-level ``split``) and caches it.

    The buffer may also be any read-only buffer-protocol object —
    ``mmap.mmap`` of an artifact-cache dataset entry, or a
    ``memoryview`` — in which case offsets index straight into the
    shared map and only the records actually touched are copied out.
    """

    __slots__ = ("_buf", "_starts", "_ends", "_lines")

    def __init__(self, buf,
                 _starts: np.ndarray | None = None,
                 _ends: np.ndarray | None = None) -> None:
        self._buf = buf
        self._starts = _starts
        self._ends = _ends
        self._lines: list[bytes] | None = None

    # -- construction -----------------------------------------------------

    @property
    def buffer(self) -> bytes:
        return self._buf

    def _slice(self, s: int, e: int) -> bytes:
        """One record copied out of the buffer as ``bytes``.

        ``bytes`` and ``mmap`` slice to ``bytes`` already; ``memoryview``
        needs the explicit conversion.
        """
        chunk = self._buf[s:e]
        return chunk if type(chunk) is bytes else bytes(chunk)

    def _offsets(self) -> tuple[np.ndarray, np.ndarray]:
        """Line [start, end) offsets into the buffer (computed lazily)."""
        if self._starts is None:
            buf = self._buf
            nl = np.flatnonzero(np.frombuffer(buf, dtype=np.uint8) == 0x0A)
            starts = np.empty(len(nl) + 1, dtype=np.int64)
            starts[0] = 0
            starts[1:] = nl + 1
            ends = np.empty_like(starts)
            ends[:-1] = nl
            ends[-1] = len(buf)
            # buffer-protocol-safe trailing-newline check (no .endswith on
            # mmap/memoryview; indexing yields an int byte everywhere)
            if len(buf) == 0 or buf[-1] == 0x0A:
                starts = starts[:-1]
                ends = ends[:-1]
            self._starts, self._ends = starts, ends
        return self._starts, self._ends

    # -- Sequence protocol ------------------------------------------------

    def __len__(self) -> int:
        if self._lines is not None:
            return len(self._lines)
        if self._starts is not None:
            return len(self._starts)
        buf = self._buf
        if type(buf) is not bytes:
            return len(self._offsets()[0])
        n = buf.count(b"\n")
        if buf and not buf.endswith(b"\n"):
            n += 1
        return n

    def __getitem__(self, i):
        if isinstance(i, slice):
            starts, ends = self._offsets()
            view = RecordBlock(self._buf, starts[i], ends[i])
            if self._lines is not None:
                view._lines = self._lines[i]
            return view
        if self._lines is not None:
            return self._lines[i]
        starts, ends = self._offsets()
        if i < 0:
            i += len(starts)
        return self._slice(starts[i], ends[i])

    def _materialize(self) -> list[bytes]:
        if self._lines is None:
            if self._starts is None and type(self._buf) is bytes:
                lines = self._buf.split(b"\n")
                if lines and lines[-1] == b"":
                    lines.pop()
                self._lines = lines
            else:
                starts, ends = self._offsets()
                self._lines = [self._slice(s, e) for s, e in
                               zip(starts.tolist(), ends.tolist())]
        return self._lines

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._materialize())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RecordBlock):
            return self._materialize() == other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"RecordBlock({len(self)} records, {len(self._buf)} bytes)"

    # -- batch kernels ----------------------------------------------------

    def decode_all(self, encoding: str = "utf-8",
                   errors: str = "replace") -> list[str]:
        """Decode every record in one pass over the shared buffer.

        Bitwise-equal to ``[r.decode(encoding, errors) for r in self]``
        for utf-8: ``\\n`` is never part of a multibyte sequence and the
        decoder resets at it, so splitting before or after decoding
        yields the same strings.
        """
        if self._starts is not None and self._lines is None:
            # A sliced view: decode only the covered records.
            return [r.decode(encoding, errors) for r in self._materialize()]
        # str(buf, ...) decodes any buffer-protocol object (bytes, mmap,
        # memoryview) in one C call
        text = str(self._buf, encoding, errors)
        out = text.split("\n")
        if out and out[-1] == "":
            out.pop()
        return out


# ---------------------------------------------------------------------------
# PairBlock: (int64 key, float64 value) columns for numeric shuffles
# ---------------------------------------------------------------------------


class PairBlock(Sequence):
    """A Spark partition of ``(int key, float value)`` pairs, columnar.

    Iteration and indexing yield plain Python ``(int, float)`` tuples so
    every scalar consumer (cogroup, collect, user lambdas under NOFUSE)
    sees exactly what the list-of-tuples path produced.  Slicing returns
    a zero-copy column view.
    """

    __slots__ = ("keys", "values")

    def __init__(self, keys: np.ndarray, values: np.ndarray) -> None:
        assert keys.dtype == np.int64 and values.dtype == np.float64
        self.keys = keys
        self.values = values

    @classmethod
    def from_pairs(cls, pairs) -> "PairBlock":
        n = len(pairs)
        keys = np.empty(n, dtype=np.int64)
        values = np.empty(n, dtype=np.float64)
        for i, (k, v) in enumerate(pairs):
            keys[i] = k
            values[i] = v
        return cls(keys, values)

    def __len__(self) -> int:
        return len(self.keys)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return PairBlock(self.keys[i], self.values[i])
        return (int(self.keys[i]), float(self.values[i]))

    def __iter__(self):
        return iter(zip(self.keys.tolist(), self.values.tolist()))

    def to_pairs(self) -> list[tuple[int, float]]:
        return list(zip(self.keys.tolist(), self.values.tolist()))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PairBlock):
            return (np.array_equal(self.keys, other.keys)
                    and np.array_equal(self.values, other.values))
        if isinstance(other, list):
            return self.to_pairs() == other
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"PairBlock({len(self)} pairs)"


def as_pair_block(records) -> "PairBlock | None":
    """Columnar view of a numeric pair partition, or ``None``.

    Converts a list of ``(int, float)`` pairs (the shape a declared
    ``vector="sum"`` aggregation asserts for its input) into a
    :class:`PairBlock`; returns ``None`` when the records are not such a
    list.  The declaration is the app's promise that *every* record is a
    plain ``(int, float)`` 2-tuple — mixed key types (e.g. ``bool``)
    would serialize to different sizes and must not be declared.
    """
    if isinstance(records, PairBlock):
        return records
    if not isinstance(records, list) or not records:
        return None
    for probe in (records[0], records[-1]):
        if not (type(probe) is tuple and len(probe) == 2
                and type(probe[0]) is int and type(probe[1]) is float):
            return None
    n = len(records)
    try:
        # keys convert int -> int64 directly (exact for every key the
        # scalar hash/group path could distinguish, including > 2**53,
        # unlike a float64 detour); OverflowError beyond int64 falls back
        keys = np.fromiter((r[0] for r in records), dtype=np.int64, count=n)
        keys_f = np.fromiter((r[0] for r in records), dtype=np.float64,
                             count=n)
        values = np.fromiter((r[1] for r in records), dtype=np.float64,
                             count=n)
    except (TypeError, ValueError, OverflowError):
        return None
    if not (keys == keys_f).all():  # a non-integral key past the probes
        return None
    return PairBlock(keys, values)


def partition_pairs(block: PairBlock, nparts: int) -> "list[PairBlock]":
    """Hash-partition a PairBlock into per-reduce blocks, order-preserving.

    Replays the scalar loop exactly: bucket of an exact-int key under a
    ``HashPartitioner`` is ``(key & 0x7FFFFFFF) % nparts`` (the int64
    bitwise AND agrees with Python's on two's-complement), and the stable
    argsort keeps each bucket's records in input order, as appending did.
    """
    bucket_ids = (block.keys & 0x7FFFFFFF) % nparts
    order = np.argsort(bucket_ids, kind="stable")
    sk = block.keys[order]
    sv = block.values[order]
    starts = np.searchsorted(bucket_ids[order], np.arange(nparts + 1))
    return [PairBlock(sk[starts[b]:starts[b + 1]], sv[starts[b]:starts[b + 1]])
            for b in range(nparts)]


def sum_by_key(keys: np.ndarray, values: np.ndarray) -> PairBlock:
    """Group-sum ``values`` by ``keys``, bit-identical to the dict loop.

    The scalar merge does ``out[k] = out[k] + v`` in record order, which
    for each key sums its values in first-to-last order and emits keys in
    first-occurrence order (dict insertion order).  We replay both:

    * ``np.add.at`` is the *unbuffered* scatter-add — it applies the
      additions strictly in index order, so per-key accumulation order
      matches the dict loop;
    * the first occurrence is **assigned** (not added to zero), so
      ``-0.0`` and NaN payloads survive bit-for-bit;
    * output slots are ordered by each key's first occurrence.
    """
    uniq, first_idx, inverse = np.unique(
        keys, return_index=True, return_inverse=True)
    order = np.argsort(first_idx, kind="stable")
    rank_of = np.empty(len(uniq), dtype=np.int64)
    rank_of[order] = np.arange(len(uniq), dtype=np.int64)
    slots = rank_of[inverse]
    out_keys = uniq[order]
    out_vals = np.empty(len(uniq), dtype=np.float64)
    out_vals[rank_of] = values[first_idx]
    rest = np.ones(len(keys), dtype=bool)
    rest[first_idx] = False
    np.add.at(out_vals, slots[rest], values[rest])
    return PairBlock(out_keys, out_vals)


# ---------------------------------------------------------------------------
# ContribBlock: sparse PageRank contributions that charge like dense
# ---------------------------------------------------------------------------


class ContribBlock:
    """Sparse stand-in for a dense per-rank contribution slice.

    ``idx``/``vals`` hold the touched positions of a logical dense
    ``float64[length]`` vector whose untouched entries are exactly
    ``0.0``.  It reports the *dense* byte size, so nbytes-driven charges
    and the eager/rendezvous protocol choice match the dense path, while
    transport skips materializing (and copying) the zeros.

    Summation (``reduce_scatter_block``) densifies on the first add and
    then scatter-adds only touched positions.  The dense path would add
    an explicit ``0.0`` at every untouched position; skipping it is a
    bitwise no-op because ``x + 0.0 == x`` for every float ``x`` except
    ``-0.0`` (and quiet-NaN payloads).  Producers must therefore never
    emit ``-0.0`` or NaN values — PageRank contributions are strictly
    positive, and the differential CI job enforces the invariant
    end-to-end.
    """

    __slots__ = ("idx", "vals", "length")
    __array_ufunc__ = None  # keep numpy from broadcasting over us

    def __init__(self, idx: np.ndarray, vals: np.ndarray, length: int) -> None:
        self.idx = idx
        self.vals = vals
        self.length = length

    @property
    def nbytes(self) -> int:
        return 8 * self.length  # the dense float64 slice it stands in for

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.length, dtype=np.float64)
        out[self.idx] = self.vals
        return out

    def __add__(self, other):
        if isinstance(other, ContribBlock):
            acc = _Accum(self.to_dense())
            return acc + other
        return NotImplemented

    def __radd__(self, other):
        if isinstance(other, np.ndarray):
            out = other.copy()
            np.add.at(out, self.idx, self.vals)
            return out
        return NotImplemented

    def __repr__(self) -> str:
        return f"ContribBlock({len(self.idx)}/{self.length} touched)"


class _Accum:
    """Owned dense accumulator produced mid-reduction.

    ``ContribBlock + ContribBlock`` returns one of these; further
    ``_Accum + ContribBlock`` adds accumulate **in place** (the array is
    private to the reduction), avoiding a dense copy per reduction step.
    Sized like the array it wraps so the final combine charge matches.
    """

    __slots__ = ("array",)
    __array_ufunc__ = None

    def __init__(self, array: np.ndarray) -> None:
        self.array = array

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    def to_dense(self) -> np.ndarray:
        return self.array

    def __add__(self, other):
        if isinstance(other, ContribBlock):
            np.add.at(self.array, other.idx, other.vals)
            return self
        return NotImplemented
