#!/usr/bin/env python
"""Wall-clock benchmark for the simulator's scheduler fast path.

Times the paper reproductions that dominate the benchmark suite — Fig 3
(reduce microbenchmark), Table II (parallel file read) and a miniature
Fig 4 (AnswersCount) — and writes ``benchmarks/results/BENCH_sim.json``
with the measured wall times, speedups over the recorded pre-fast-path
seed, and a fingerprint of the virtual-time outputs.

The fingerprint hashes the exact float bits of every data point, so two
runs (e.g. fast path vs ``--slowpath``) produced identical simulations iff
their fingerprints match::

    PYTHONPATH=src python tools/bench_wallclock.py
    PYTHONPATH=src python tools/bench_wallclock.py --slowpath   # reference engine
    PYTHONPATH=src python tools/bench_wallclock.py --scalar     # no block kernels
    PYTHONPATH=src python tools/bench_wallclock.py \
        --workloads fig4_mini --compare --max-regression 2.0    # CI bench smoke

The seed baselines below were measured on the pre-optimisation engine
(O(n) scan, engine-mediated switches, no record-scale sampling in the
Spark reduce) on the same container class that runs CI; they are fixed
reference constants, not re-measured per run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import figures  # noqa: E402
from repro.platform import fingerprint_result as fingerprint  # noqa: E402

#: wall seconds on the seed engine (see module docstring).  fig3/table2/
#: fig4_mini were measured before the scheduler fast path (PR 1);
#: fig4/fig6/fig7 before the data-plane batching work (fused narrow
#: stages, combining shuffle, chunked content) on the same container.
SEED_WALL = {
    "fig3": 19.7,
    "table2": 16.9,
    "fig4_mini": 0.75,
    "fig4": 218.08,
    "fig6": 268.43,
    # fig6 through the driver's intra-experiment sharding (series-split
    # units over a spawn pool); same simulation, so the fig6 seed applies
    "fig6_intra": 268.43,
    "fig7": 77.93,
    # fig4_mini through the driver with a cold artifact cache; before the
    # cache existed every rerun paid this full cost, so the fig4_mini seed
    # applies to the cold leg
    "cold_vs_warm": 0.75,
    # full sched-trace experiment (3 seeds x 120 jobs) on the reference
    # engine (--slowpath), cold runtime memo — the scheduler itself is
    # pure Python; the wall cost is the memoized app-adapter measurements
    "sched_trace": 4.62,
}


def host_metadata(machine: str = "comet") -> dict:
    """CPU model, core count and RAM of the benchmarking host.

    Best-effort from ``/proc``; fields are ``None`` where the platform
    does not expose them.  Recorded so committed baselines carry the
    hardware they were measured on — plus the *simulated* machine model
    (``machine``) the workloads ran against, so baselines measured on
    different machine models are never compared by accident.
    """
    meta: dict = {"python": sys.version.split()[0],
                  "machine": machine,
                  "cores": os.cpu_count(), "cpu_model": None,
                  "ram_bytes": None}
    try:
        for line in Path("/proc/cpuinfo").read_text().splitlines():
            if line.lower().startswith("model name"):
                meta["cpu_model"] = line.split(":", 1)[1].strip()
                break
    except OSError:
        pass
    try:
        for line in Path("/proc/meminfo").read_text().splitlines():
            if line.startswith("MemTotal:"):
                meta["ram_bytes"] = int(line.split()[1]) * 1024
                break
    except OSError:
        pass
    return meta


def _cold_vs_warm(repeat: int, machine: str = "comet") -> dict:
    """Cold-vs-warm artifact-cache differential on a mini Fig 4.

    Runs fig4_mini through the driver twice against a throwaway store:
    the cold leg executes and populates both cache planes, the warm leg
    must replay every unit.  Fails hard if the warm run misses, diverges,
    or is not at least 2x faster — the cache's headline claim.

    ``wall_s`` reports the *cold* leg (stable, comparable across runs);
    the warm leg is milliseconds and its wall-time ratio would be noise.
    """
    import tempfile

    from repro.platform import run_suite

    overrides = {"fig4": {"proc_counts": (8, 16),
                          "logical_size": 8 * 10**9,
                          "machine": machine}}
    colds, warms = [], []
    result = None
    for _ in range(repeat):
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
            t0 = time.perf_counter()
            cold = run_suite(["fig4"], overrides=overrides, cache=root)
            t1 = time.perf_counter()
            warm = run_suite(["fig4"], overrides=overrides, cache=root)
            t2 = time.perf_counter()
            if cold.cache is None:
                raise SystemExit("cold_vs_warm: caching disabled "
                                 "(REPRO_NO_CACHE set?)")
            if warm.cache["hits"] != 2 or warm.cache["misses"]:
                raise SystemExit(f"cold_vs_warm: warm run missed the cache "
                                 f"({warm.cache})")
            if warm.fingerprints() != cold.fingerprints():
                raise SystemExit("cold_vs_warm: warm fingerprints diverged "
                                 "from cold")
            colds.append(t1 - t0)
            warms.append(t2 - t1)
            result = warm.results["fig4"]
    cold_wall, warm_wall = min(colds), min(warms)
    speedup = cold_wall / max(warm_wall, 1e-9)
    if speedup < 2.0:
        raise SystemExit(f"cold_vs_warm: warm run only {speedup:.2f}x faster "
                         f"than cold (cold {cold_wall:.3f}s, "
                         f"warm {warm_wall:.3f}s); expected >= 2x")
    return {
        "wall_s": round(cold_wall, 3),
        "walls_s": [round(w, 3) for w in colds],
        "cold_wall_s": round(cold_wall, 3),
        "warm_wall_s": round(warm_wall, 3),
        "warm_speedup": round(speedup, 1),
        "seed_wall_s": SEED_WALL["cold_vs_warm"],
        "speedup_vs_seed": round(SEED_WALL["cold_vs_warm"] / cold_wall, 2),
        "fingerprint": fingerprint(result),
    }


def _sched_trace(repeat: int, machine: str = "comet") -> dict:
    """Batch-scheduler throughput: jobs scheduled per wall-second.

    Runs the full ``sched-trace`` experiment (3 seeds × 120 jobs:
    generate the traces, measure every distinct job configuration
    through the real app adapters, schedule under backfill plus the FCFS
    ablation) with a cold runtime memo per repetition, so the wall time
    covers the whole pipeline, not just the event loop.
    """
    from repro.core.schedexp import DEFAULT_SEEDS, sched_trace
    from repro.sched import clear_runtime_memo

    n_jobs = 120
    walls = []
    result = None
    for _ in range(repeat):
        clear_runtime_memo()
        t0 = time.perf_counter()
        result = sched_trace(seeds=DEFAULT_SEEDS, n_jobs=n_jobs,
                             machine=machine)
        walls.append(time.perf_counter() - t0)
    wall = min(walls)
    total_jobs = len(DEFAULT_SEEDS) * n_jobs
    return {
        "wall_s": round(wall, 3),
        "walls_s": [round(w, 3) for w in walls],
        "jobs": total_jobs,
        "jobs_per_wall_s": round(total_jobs / wall, 1),
        "seed_wall_s": SEED_WALL["sched_trace"],
        "speedup_vs_seed": round(SEED_WALL["sched_trace"] / wall, 2),
        "fingerprint": fingerprint(result),
    }


def _intra_suite(exp_id: str, intra_workers: int, machine: str):
    from repro.platform import run_suite

    suite = run_suite([exp_id], intra_workers=intra_workers,
                      overrides={exp_id: {"machine": machine}})
    return suite.results[exp_id]


WORKLOADS = {
    "fig3": lambda machine: figures.fig3(machine=machine),
    "table2": lambda machine: figures.table2(machine=machine),
    "fig4_mini": lambda machine: figures.fig4(proc_counts=(8, 16),
                                              logical_size=8 * 10**9,
                                              machine=machine),
    "fig4": lambda machine: figures.fig4(machine=machine),
    "fig6": lambda machine: figures.fig6(machine=machine),
    "fig6_intra": lambda machine: _intra_suite("fig6", 3, machine),
    "fig7": lambda machine: figures.fig7(machine=machine),
    # special-cased in run_workload: times two legs, not one callable
    "cold_vs_warm": None,
    # special-cased in run_workload: reports jobs scheduled per wall-second
    "sched_trace": None,
}

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "BENCH_sim.json"


def run_workload(name: str, *, repeat: int = 1,
                 machine: str = "comet") -> dict:
    """Run one workload ``repeat`` times; report the best wall time."""
    if name == "cold_vs_warm":
        return _cold_vs_warm(repeat, machine)
    if name == "sched_trace":
        return _sched_trace(repeat, machine)
    fn = WORKLOADS[name]
    walls = []
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn(machine)
        walls.append(time.perf_counter() - t0)
    wall = min(walls)
    return {
        "wall_s": round(wall, 3),
        "walls_s": [round(w, 3) for w in walls],
        "seed_wall_s": SEED_WALL[name],
        "speedup_vs_seed": round(SEED_WALL[name] / wall, 2),
        "fingerprint": fingerprint(result),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--only", choices=sorted(WORKLOADS), action="append",
                    help="benchmark only this workload (repeatable)")
    ap.add_argument("--workloads", metavar="NAME[,NAME...]",
                    help="comma-separated workload filter "
                         f"(choices: {','.join(sorted(WORKLOADS))})")
    def positive_int(v: str) -> int:
        n = int(v)
        if n < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return n

    ap.add_argument("--repeat", type=positive_int, default=1,
                    help="repetitions per workload; best wall time is kept")
    ap.add_argument("--slowpath", action="store_true",
                    help="force the reference scheduler (REPRO_SIM_SLOWPATH=1)")
    ap.add_argument("--nofuse", action="store_true",
                    help="disable Spark narrow-stage fusion and the "
                         "combining shuffle (REPRO_SPARK_NOFUSE=1)")
    ap.add_argument("--scalar", action="store_true",
                    help="disable the columnar record-block kernels "
                         "(REPRO_SPARK_SCALAR=1)")
    ap.add_argument("--machine", default="comet", metavar="NAME",
                    help="simulated machine model to benchmark on (default: "
                         "comet; non-default machines produce different "
                         "fingerprints, so don't --compare across machines)")
    ap.add_argument("--compare", action="store_true",
                    help="compare against the committed results instead of "
                         "writing: report per-workload wall ratio and diff "
                         "fingerprints (exit 1 on fingerprint mismatch or "
                         "--max-regression breach)")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_OUT,
                    help="baseline JSON for --compare "
                         f"(default: {DEFAULT_OUT})")
    ap.add_argument("--max-regression", type=float, default=None,
                    metavar="X",
                    help="with --compare: fail if any workload's wall time "
                         "exceeds X times its baseline")
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT,
                    help=f"output JSON path (default: {DEFAULT_OUT})")
    args = ap.parse_args(argv)

    from repro.cluster import get_machine
    from repro.errors import ConfigurationError

    try:
        get_machine(args.machine)
    except ConfigurationError as exc:
        ap.error(str(exc))

    if args.slowpath:
        os.environ["REPRO_SIM_SLOWPATH"] = "1"
    if args.nofuse:
        os.environ["REPRO_SPARK_NOFUSE"] = "1"
    if args.scalar:
        os.environ["REPRO_SPARK_SCALAR"] = "1"
    names = list(args.only or sorted(WORKLOADS))
    if args.workloads:
        wanted = [w.strip() for w in args.workloads.split(",") if w.strip()]
        unknown = [w for w in wanted if w not in WORKLOADS]
        if unknown:
            ap.error(f"unknown workload(s) {unknown}; "
                     f"have {sorted(WORKLOADS)}")
        names = [n for n in names if n in wanted] if args.only else wanted

    baseline = None
    if args.compare:
        try:
            baseline = json.loads(args.baseline.read_text())
        except FileNotFoundError:
            ap.error(f"--compare baseline {args.baseline} not found")

    out = {
        "scheduler": "slowpath" if args.slowpath else "fast",
        "data_plane": "nofuse" if args.nofuse else "fused",
        "record_blocks": "scalar" if args.scalar else "blocks",
        "python": sys.version.split()[0],
        "machine": args.machine,
        "host": host_metadata(args.machine),
        "workloads": {},
    }
    print(f"scheduler: {out['scheduler']}  data plane: {out['data_plane']}"
          f"  record blocks: {out['record_blocks']}  (repeat={args.repeat})")
    host = out["host"]
    print(f"host: {host['cpu_model'] or 'unknown CPU'}, "
          f"{host['cores']} cores, "
          + (f"{host['ram_bytes'] / 2**30:.1f} GiB RAM"
             if host["ram_bytes"] else "RAM unknown")
          + f"  machine model: {args.machine}")
    for name in names:
        entry = run_workload(name, repeat=args.repeat,
                             machine=args.machine)
        out["workloads"][name] = entry
        print(f"  {name:10s} {entry['wall_s']:8.3f}s   "
              f"seed {entry['seed_wall_s']:6.2f}s   "
              f"speedup {entry['speedup_vs_seed']:5.2f}x   "
              f"fp {entry['fingerprint']}")

    if args.compare:
        failures = []
        print(f"compare vs {args.baseline}:")
        for name in names:
            entry = out["workloads"][name]
            base = baseline.get("workloads", {}).get(name)
            if base is None:
                print(f"  {name:10s} not in baseline — skipped")
                continue
            ratio = entry["wall_s"] / base["wall_s"] if base["wall_s"] else 0.0
            fp_ok = entry["fingerprint"] == base["fingerprint"]
            verdict = "ok" if fp_ok else "FINGERPRINT MISMATCH"
            if not fp_ok:
                failures.append(f"{name}: fingerprint {entry['fingerprint']} "
                                f"!= baseline {base['fingerprint']}")
            if args.max_regression is not None and \
                    ratio > args.max_regression:
                verdict = f"REGRESSION (> {args.max_regression:g}x)"
                failures.append(f"{name}: wall {entry['wall_s']}s is "
                                f"{ratio:.2f}x baseline {base['wall_s']}s")
            print(f"  {name:10s} {entry['wall_s']:8.3f}s vs "
                  f"{base['wall_s']:8.3f}s  ({ratio:5.2f}x)  {verdict}")
        for line in failures:
            print(f"FAIL  {line}", file=sys.stderr)
        return 1 if failures else 0

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(out, indent=1) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
